//! Partitioning an RC network's internal-node graph into leaf blocks.
//!
//! The dissection runs over the *internal* nodes only (ports are already
//! interface nodes and never enter a block), using the union of the `G`
//! and `C` adjacency so that capacitive coupling counts as connectivity.
//! Every branch of the network is then assigned to exactly one leaf (if
//! it touches that leaf's internals — the separator property guarantees
//! a branch never touches two leaves) or to the residual top network
//! (branches living entirely on ports/separators/ground).

use pact_netlist::{Branch, RcNetwork};
use pact_sparse::{nested_dissection_partition, TripletMat};

/// One leaf block: a self-contained sub-network whose ports are the
/// parent nodes on its boundary and whose internals are the block's own
/// internal nodes.
#[derive(Clone, Debug)]
pub struct LeafBlock {
    /// Stable block id (dissection order), used in telemetry and warning
    /// attribution (`node@block<id>`).
    pub id: usize,
    /// The extracted sub-network, boundary nodes first (as ports).
    pub network: RcNetwork,
    /// Global node indices of the leaf's boundary, ascending — real
    /// ports of the parent first, then separator nodes (ports have
    /// smaller global indices by the ports-first convention).
    pub boundary: Vec<usize>,
    /// Global node indices of the leaf's internal nodes, ascending.
    pub internals: Vec<usize>,
}

/// The full partition of a network for hierarchical reduction.
#[derive(Clone, Debug, Default)]
pub struct PartitionTree {
    /// Leaf blocks with a non-empty boundary, in dissection order.
    pub leaves: Vec<LeafBlock>,
    /// Global indices of all separator nodes, ascending.
    pub separators: Vec<usize>,
    /// Depth of the dissection tree.
    pub depth: usize,
    /// Internal nodes in the largest leaf.
    pub max_block_nodes: usize,
    /// Vertices in the largest single separator.
    pub max_separator_nodes: usize,
    /// Leaf blocks dropped because no branch connects them to any port
    /// or separator: they cannot influence the reduced model.
    pub portless_dropped: usize,
    /// Resistor branches owned by no leaf (endpoints all in
    /// ports/separators/ground), stamped directly into the top network.
    pub residual_resistors: Vec<Branch>,
    /// Capacitor branches owned by no leaf.
    pub residual_capacitors: Vec<Branch>,
}

impl PartitionTree {
    /// Dissects `net`'s internal-node graph until every block holds at
    /// most `max_block` nodes or `max_depth` levels are spent, then
    /// extracts one [`LeafBlock`] sub-network per block.
    ///
    /// Deterministic: depends only on the network topology and the two
    /// budgets, never on thread count.
    pub fn build(net: &RcNetwork, max_block: usize, max_depth: usize) -> PartitionTree {
        let m = net.num_ports;
        let n_int = net.num_internal();

        // Adjacency of the internal-node graph: an edge wherever a
        // resistor or capacitor joins two internal nodes.
        let mut adj = TripletMat::new(n_int, n_int);
        for b in net.resistors.iter().chain(&net.capacitors) {
            if let (Some(a), Some(bb)) = (b.a, b.b) {
                if a >= m && bb >= m && a != bb {
                    adj.push(a - m, bb - m, 1.0);
                    adj.push(bb - m, a - m, 1.0);
                }
            }
        }
        let part = nested_dissection_partition(&adj.to_csr(), max_block.max(1), max_depth);

        // Leaf ownership of every internal node (local numbering).
        let mut leaf_of: Vec<Option<usize>> = vec![None; n_int];
        for (k, leaf) in part.leaves.iter().enumerate() {
            for &v in leaf {
                leaf_of[v] = Some(k);
            }
        }

        let mut separators: Vec<usize> = part.separators.iter().flatten().map(|&v| v + m).collect();
        separators.sort_unstable();

        // Assign each branch to the unique leaf owning one of its
        // internal endpoints, or to the residual top network.
        let owner = |b: &Branch| -> Option<usize> {
            let of = |t: Option<usize>| t.filter(|&v| v >= m).and_then(|v| leaf_of[v - m]);
            match (of(b.a), of(b.b)) {
                (Some(x), Some(y)) => {
                    debug_assert_eq!(x, y, "separator property: no branch spans two leaves");
                    Some(x)
                }
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            }
        };
        let nleaves = part.leaves.len();
        let mut leaf_resistors: Vec<Vec<Branch>> = vec![Vec::new(); nleaves];
        let mut leaf_capacitors: Vec<Vec<Branch>> = vec![Vec::new(); nleaves];
        let mut residual_resistors = Vec::new();
        let mut residual_capacitors = Vec::new();
        for r in &net.resistors {
            match owner(r) {
                Some(k) => leaf_resistors[k].push(*r),
                None => residual_resistors.push(*r),
            }
        }
        for c in &net.capacitors {
            match owner(c) {
                Some(k) => leaf_capacitors[k].push(*c),
                None => residual_capacitors.push(*c),
            }
        }

        let mut tree = PartitionTree {
            leaves: Vec::with_capacity(nleaves),
            separators,
            depth: part.depth,
            max_block_nodes: part.max_leaf(),
            max_separator_nodes: part.max_separator(),
            portless_dropped: 0,
            residual_resistors,
            residual_capacitors,
        };

        for (k, leaf) in part.leaves.iter().enumerate() {
            let mut internals: Vec<usize> = leaf.iter().map(|&v| v + m).collect();
            internals.sort_unstable();

            // Boundary = non-leaf endpoints of the leaf's branches.
            let mut boundary: Vec<usize> = Vec::new();
            for b in leaf_resistors[k].iter().chain(&leaf_capacitors[k]) {
                for t in [b.a, b.b].into_iter().flatten() {
                    if !(t >= m && leaf_of[t - m] == Some(k)) {
                        boundary.push(t);
                    }
                }
            }
            boundary.sort_unstable();
            boundary.dedup();

            if boundary.is_empty() {
                // No connection to any port or separator: the block is
                // unobservable from every port and is dropped whole
                // (flat reduction would keep its poles with exactly
                // zero port residues — the admittance is unchanged).
                tree.portless_dropped += 1;
                continue;
            }

            // Local numbering: boundary (as ports) then internals.
            let mut local = vec![usize::MAX; net.num_nodes()];
            let mut node_names = Vec::with_capacity(boundary.len() + internals.len());
            for (new, &old) in boundary.iter().chain(&internals).enumerate() {
                local[old] = new;
                node_names.push(net.node_names[old].clone());
            }
            let map = |b: &Branch| Branch {
                a: b.a.map(|v| local[v]),
                b: b.b.map(|v| local[v]),
                value: b.value,
            };
            tree.leaves.push(LeafBlock {
                id: k,
                network: RcNetwork {
                    node_names,
                    num_ports: boundary.len(),
                    resistors: leaf_resistors[k].iter().map(&map).collect(),
                    capacitors: leaf_capacitors[k].iter().map(&map).collect(),
                },
                boundary,
                internals,
            });
        }
        tree
    }

    /// Total internal nodes covered by kept leaves.
    pub fn leaf_nodes(&self) -> usize {
        self.leaves.iter().map(|l| l.internals.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-D RC ladder with a port at each end: p0 - i0 - … - i{n-1} - p1.
    fn ladder(n_internal: usize) -> RcNetwork {
        let mut names = vec!["p0".to_owned(), "p1".to_owned()];
        for i in 0..n_internal {
            names.push(format!("i{i}"));
        }
        let node = |k: usize| -> usize {
            if k == 0 {
                0
            } else if k == n_internal + 1 {
                1
            } else {
                1 + k
            }
        };
        let mut resistors = Vec::new();
        let mut capacitors = Vec::new();
        for k in 0..=n_internal {
            resistors.push(Branch {
                a: Some(node(k)),
                b: Some(node(k + 1)),
                value: 10.0,
            });
        }
        for i in 0..n_internal {
            capacitors.push(Branch {
                a: Some(2 + i),
                b: None,
                value: 1e-15,
            });
        }
        RcNetwork {
            node_names: names,
            num_ports: 2,
            resistors,
            capacitors,
        }
    }

    #[test]
    fn ladder_partition_covers_every_node_and_branch() {
        let net = ladder(40);
        let tree = PartitionTree::build(&net, 10, 16);
        assert!(tree.leaves.len() >= 2);
        assert_eq!(tree.leaf_nodes() + tree.separators.len(), 40);
        assert!(tree.max_block_nodes <= 10);
        // Every branch is either in exactly one leaf or residual.
        let owned: usize = tree
            .leaves
            .iter()
            .map(|l| l.network.resistors.len() + l.network.capacitors.len())
            .sum();
        let residual = tree.residual_resistors.len() + tree.residual_capacitors.len();
        assert_eq!(owned + residual, net.resistors.len() + net.capacitors.len());
        // Boundaries only hold ports/separators.
        for l in &tree.leaves {
            for &b in &l.boundary {
                assert!(b < 2 || tree.separators.contains(&b), "boundary node {b}");
            }
        }
    }

    #[test]
    fn leaf_networks_have_boundary_first_ordering() {
        let net = ladder(30);
        let tree = PartitionTree::build(&net, 8, 16);
        for l in &tree.leaves {
            assert_eq!(l.network.num_ports, l.boundary.len());
            assert_eq!(l.network.num_internal(), l.internals.len());
            for (j, &g) in l.boundary.iter().enumerate() {
                assert_eq!(l.network.node_names[j], net.node_names[g]);
            }
            // Boundary is sorted so real ports precede separators.
            assert!(l.boundary.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn single_block_when_budget_is_large() {
        let net = ladder(20);
        let tree = PartitionTree::build(&net, 1000, 16);
        assert_eq!(tree.leaves.len(), 1);
        assert!(tree.separators.is_empty());
        assert_eq!(tree.leaves[0].internals.len(), 20);
    }

    #[test]
    fn unobservable_block_is_dropped() {
        // A floating resistively-grounded island: f-nodes joined to each
        // other and ground, but never to a port. The budget is chosen so
        // the dissection separates the island (disconnected component,
        // empty separator) as one whole leaf.
        let mut net = ladder(2);
        let base = net.num_nodes();
        for i in 0..6 {
            net.node_names.push(format!("f{i}"));
        }
        for i in 0..5 {
            net.resistors.push(Branch {
                a: Some(base + i),
                b: Some(base + i + 1),
                value: 5.0,
            });
        }
        net.resistors.push(Branch {
            a: Some(base),
            b: None,
            value: 5.0,
        });
        let tree = PartitionTree::build(&net, 7, 16);
        assert_eq!(tree.portless_dropped, 1, "island must be dropped");
        // The dropped island's branches are not in any leaf or residual.
        let owned: usize = tree.leaves.iter().map(|l| l.network.resistors.len()).sum();
        assert!(owned + tree.residual_resistors.len() < net.resistors.len());
    }
}
