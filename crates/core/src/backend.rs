//! Pluggable eigensolver backends for the pole analysis of `E'`.
//!
//! The paper's Section-3.2 pole analysis admits three implementations with
//! very different cost profiles: a dense QL decomposition (`O(n³)`, exact,
//! the oracle), Lanczos with selective orthogonalization (the paper's
//! LASO choice for large `n`), and a rank-revealing fast path exploiting
//! the §6 observation that extracted RC networks carry far fewer
//! capacitors than nodes. [`EigenBackend`] names the common contract;
//! [`EigenSelect`] picks one per reduction — adaptively by internal-block
//! size and capacitance rank under [`EigenSelect::Auto`] — and the choice
//! made for every block is recorded in telemetry
//! ([`crate::EigenChoice`]).

use pact_lanczos::{eigs_above_with_stats, LanczosConfig, LanczosStats, SymOp};
use pact_sparse::{sym_eig, DMat, ParCtx};

use crate::partition::Partitions;
use crate::reduce::ReduceError;
use crate::transform::Transform1;

/// Eigenpairs of `E'` above the cutoff `λ_c`, in descending eigenvalue
/// order — the kept poles of the reduction.
#[derive(Clone, Debug, Default)]
pub struct EigenSolution {
    /// Retained eigenvalues, descending.
    pub lambdas: Vec<f64>,
    /// Matching eigenvectors of `E'` (unit 2-norm).
    pub vectors: Vec<Vec<f64>>,
    /// Work counters when the Lanczos backend ran.
    pub lanczos: Option<LanczosStats>,
}

/// One way of computing the eigenpairs of `E' = F⁻¹EF⁻ᵀ` above `λ_c`.
///
/// All backends produce identical spectra up to floating-point ordering
/// guarantees documented per implementation; for a fixed backend the
/// result is bit-identical at every thread count.
pub trait EigenBackend {
    /// Stable identifier recorded in telemetry (`"dense"`, `"lanczos"`,
    /// `"lowrank"`).
    fn name(&self) -> &'static str;

    /// Computes the retained eigenpairs, or `None` when this backend does
    /// not apply to the problem (e.g. the low-rank path on a full-rank
    /// capacitance block) and the caller should fall back.
    fn poles(
        &self,
        t1: &Transform1,
        parts: &Partitions,
        lambda_c: f64,
        ctx: &ParCtx,
    ) -> Option<Result<EigenSolution, ReduceError>>;
}

/// Dense QL on the explicitly formed `E'` (EISPACK `tred2`/`tql2`):
/// the `O(n³)` oracle, always applicable.
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseQlBackend;

/// Lanczos with selective orthogonalization on the `E'` operator
/// ([`pact_lanczos`]), never forming `E'` densely.
#[derive(Clone, Debug, Default)]
pub struct LanczosBackend {
    /// Solver configuration; a `threads: None` config inherits the
    /// reduction's resolved thread count.
    pub config: LanczosConfig,
}

/// Rank-revealing fast path: with the capacitance split `E = Σ c·uuᵀ`
/// (`= U Uᵀ`), `E' = X Xᵀ` for `X = F⁻¹U`, whose nonzero spectrum equals
/// that of the tiny `c×c` Gram matrix `XᵀX`. Applies only when `E` is a
/// capacitance stamp with rank bound `c < n`; otherwise
/// [`EigenBackend::poles`] returns `None`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LowRankBackend;

impl EigenBackend for DenseQlBackend {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn poles(
        &self,
        t1: &Transform1,
        parts: &Partitions,
        lambda_c: f64,
        ctx: &ParCtx,
    ) -> Option<Result<EigenSolution, ReduceError>> {
        Some(dense_poles(t1, parts, lambda_c, ctx))
    }
}

impl EigenBackend for LanczosBackend {
    fn name(&self) -> &'static str {
        "lanczos"
    }

    fn poles(
        &self,
        t1: &Transform1,
        parts: &Partitions,
        lambda_c: f64,
        ctx: &ParCtx,
    ) -> Option<Result<EigenSolution, ReduceError>> {
        Some(laso_poles(t1, parts, lambda_c, &self.config, ctx))
    }
}

impl EigenBackend for LowRankBackend {
    fn name(&self) -> &'static str {
        "lowrank"
    }

    fn poles(
        &self,
        t1: &Transform1,
        parts: &Partitions,
        lambda_c: f64,
        ctx: &ParCtx,
    ) -> Option<Result<EigenSolution, ReduceError>> {
        low_rank_poles(t1, parts, lambda_c, ctx)
    }
}

/// Eigen backend selection ([`crate::ReduceOptions::eigen_backend`],
/// `rcfit --eigen {auto,dense,lanczos,lowrank}`).
#[derive(Clone, Debug, Default)]
pub enum EigenSelect {
    /// Adaptive: for internal blocks of at most
    /// [`crate::ReduceOptions::dense_threshold`] nodes, try the low-rank
    /// fast path and fall back to dense QL when the capacitance rank does
    /// not beat the block size; above the threshold, Lanczos with the
    /// default configuration.
    #[default]
    Auto,
    /// Always form `E'` densely and fully decompose it (oracle; `O(n³)`).
    Dense,
    /// Always use the Lanczos solver with the given configuration.
    Lanczos(LanczosConfig),
    /// The rank-revealing fast path, falling back to dense QL when the
    /// capacitance rank does not beat `n`.
    LowRank,
}

/// Resolves the selection against the block at hand and runs the chosen
/// backend. Returns the solution together with the name of the backend
/// that actually produced it (after any fallback), for telemetry.
pub(crate) fn compute_poles(
    sel: &EigenSelect,
    dense_threshold: usize,
    t1: &Transform1,
    parts: &Partitions,
    lambda_c: f64,
    ctx: &ParCtx,
) -> Result<(EigenSolution, &'static str), ReduceError> {
    let lowrank_else_dense =
        |t1: &Transform1| -> Result<(EigenSolution, &'static str), ReduceError> {
            match LowRankBackend.poles(t1, parts, lambda_c, ctx) {
                Some(r) => Ok((r?, LowRankBackend.name())),
                None => {
                    let sol = DenseQlBackend
                        .poles(t1, parts, lambda_c, ctx)
                        .expect("dense backend is always applicable")?;
                    Ok((sol, DenseQlBackend.name()))
                }
            }
        };
    match sel {
        EigenSelect::Dense => {
            let sol = DenseQlBackend
                .poles(t1, parts, lambda_c, ctx)
                .expect("dense backend is always applicable")?;
            Ok((sol, DenseQlBackend.name()))
        }
        EigenSelect::Lanczos(cfg) => {
            let backend = LanczosBackend {
                config: cfg.clone(),
            };
            let sol = backend
                .poles(t1, parts, lambda_c, ctx)
                .expect("lanczos backend is always applicable")?;
            Ok((sol, backend.name()))
        }
        EigenSelect::LowRank => lowrank_else_dense(t1),
        EigenSelect::Auto => {
            if parts.n <= dense_threshold {
                lowrank_else_dense(t1)
            } else {
                let backend = LanczosBackend::default();
                let sol = backend
                    .poles(t1, parts, lambda_c, ctx)
                    .expect("lanczos backend is always applicable")?;
                Ok((sol, backend.name()))
            }
        }
    }
}

/// One rank-1 term `w·u uᵀ` of the capacitance split: `u = e_i − e_j`
/// for a coupling entry, `u = e_i` (j = None) for residual node
/// capacitance to ground/ports.
pub(crate) struct CapTerm {
    pub(crate) i: usize,
    pub(crate) j: Option<usize>,
    pub(crate) w: f64,
}

/// Splits the internal capacitance block `E` into `Σ c_k u_k u_kᵀ` with
/// one term per coupling entry plus one per residual diagonal — the
/// factorization every capacitance stamp admits (a branch between two
/// internal nodes contributes `c(e_i−e_j)(e_i−e_j)ᵀ`, everything else is
/// diagonal). Returns `None` if `E` is not such a stamp (positive
/// off-diagonal or negative residual beyond rounding), which sends the
/// caller to the general dense path.
pub(crate) fn capacitance_split(e: &pact_sparse::CsrMat) -> Option<Vec<CapTerm>> {
    let n = e.nrows();
    let diag: Vec<f64> = (0..n).map(|i| e.get(i, i)).collect();
    let mut terms = Vec::new();
    let mut offsum = vec![0.0f64; n];
    for i in 0..n {
        for (j, v) in e.row_iter(i) {
            if j <= i {
                continue;
            }
            let tol = 1e-12 * (diag[i].abs() + diag[j].abs());
            if v > tol {
                return None; // not a capacitance stamp
            }
            if v < -tol {
                terms.push(CapTerm {
                    i,
                    j: Some(j),
                    w: -v,
                });
                offsum[i] -= v;
                offsum[j] -= v;
            }
        }
    }
    for i in 0..n {
        let s = diag[i] - offsum[i];
        let tol = 1e-12 * diag[i].abs();
        if s < -tol {
            return None;
        }
        if s > tol {
            terms.push(CapTerm { i, j: None, w: s });
        }
    }
    Some(terms)
}

/// Pole analysis exploiting the rank deficiency of `E` (the paper's §6
/// observation that RC extractions carry far fewer capacitors than
/// nodes): with `E = U Uᵀ` (one scaled column per capacitance term),
/// `E' = X Xᵀ` for `X = F⁻¹U`, whose nonzero spectrum equals that of the
/// tiny `c×c` Gram matrix `XᵀX`. Eigenpairs `(λ, z)` of the Gram lift to
/// eigenvectors `v = Xz/√λ` of `E'`. `None` when `E` is not a
/// capacitance stamp or the rank bound does not beat `n` — callers fall
/// back to the dense `n×n` path.
fn low_rank_poles(
    t1: &Transform1,
    parts: &Partitions,
    lambda_c: f64,
    ctx: &ParCtx,
) -> Option<Result<EigenSolution, ReduceError>> {
    let n = parts.n;
    if n == 0 {
        return Some(Ok(EigenSolution::default()));
    }
    let terms = capacitance_split(&parts.e)?;
    let c = terms.len();
    if c == 0 {
        return Some(Ok(EigenSolution::default()));
    }
    if c >= n {
        return None;
    }
    // X = F⁻¹ U, one forward solve per capacitance term; each column is
    // computed by exactly one worker, so the result is thread-invariant.
    // A column's support is the elimination-tree reach of its two nodes
    // — usually a small fraction of `n` — so columns are compressed to
    // (index, value) pairs. The nonzero pattern is itself deterministic
    // (exact zeros are reproduced bit-for-bit by the serial-per-column
    // solves), so the compressed form stays thread-invariant too.
    let x: Vec<(Vec<u32>, Vec<f64>)> = ctx.map_items(
        c,
        || (vec![0.0f64; n], vec![0.0f64; n]),
        |(rhs, col), k| {
            rhs.iter_mut().for_each(|v| *v = 0.0);
            let t = &terms[k];
            let w = t.w.sqrt();
            rhs[t.i] = w;
            if let Some(j) = t.j {
                rhs[j] = -w;
            }
            t1.chol.fsolve_into(rhs, col);
            let mut idx = Vec::new();
            let mut val = Vec::new();
            for (i, &v) in col.iter().enumerate() {
                if v != 0.0 {
                    idx.push(i as u32);
                    val.push(v);
                }
            }
            (idx, val)
        },
    );
    // Gram matrix XᵀX (c×c): row-partitioned sparse merge dots, each
    // with a fixed index-ascending summation order.
    let mut gram = DMat::zeros(c, c);
    let rows = ctx.map_items(
        c,
        || (),
        |_, a| {
            (a..c)
                .map(|b| sparse_dot(&x[a], &x[b]))
                .collect::<Vec<f64>>()
        },
    );
    for (a, row) in rows.iter().enumerate() {
        for (off, &v) in row.iter().enumerate() {
            gram[(a, a + off)] = v;
            gram[(a + off, a)] = v;
        }
    }
    let eig = match sym_eig(&gram) {
        Ok(e) => e,
        Err(e) => return Some(Err(e.into())),
    };
    let mut lambdas = Vec::new();
    let mut vectors = Vec::new();
    // Descending order to match the dense and LASO paths.
    for idx in (0..c).rev() {
        let lam = eig.values[idx];
        if lam < lambda_c {
            break;
        }
        let scale = 1.0 / lam.sqrt();
        let mut v = vec![0.0f64; n];
        for (k, (xi, xv)) in x.iter().enumerate() {
            let zk = eig.vectors[(k, idx)] * scale;
            if zk != 0.0 {
                for (&i, &xval) in xi.iter().zip(xv) {
                    v[i as usize] += zk * xval;
                }
            }
        }
        lambdas.push(lam);
        vectors.push(v);
    }
    Some(Ok(EigenSolution {
        lambdas,
        vectors,
        lanczos: None,
    }))
}

/// Dot product of two compressed sparse vectors (sorted indices),
/// accumulated in ascending index order.
pub(crate) fn sparse_dot(a: &(Vec<u32>, Vec<f64>), b: &(Vec<u32>, Vec<f64>)) -> f64 {
    let (ai, av) = a;
    let (bi, bv) = b;
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f64);
    while i < ai.len() && j < bi.len() {
        match ai[i].cmp(&bi[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += av[i] * bv[j];
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

fn dense_poles(
    t1: &Transform1,
    parts: &Partitions,
    lambda_c: f64,
    ctx: &ParCtx,
) -> Result<EigenSolution, ReduceError> {
    if parts.n == 0 {
        return Ok(EigenSolution::default());
    }
    let ep = t1.e_prime_dense_ctx(parts, ctx);
    let eig = sym_eig(&ep)?;
    let mut lambdas = Vec::new();
    let mut vectors = Vec::new();
    // Descending order to match the LASO path.
    for idx in (0..parts.n).rev() {
        let lam = eig.values[idx];
        if lam >= lambda_c {
            lambdas.push(lam);
            vectors.push((0..parts.n).map(|i| eig.vectors[(i, idx)]).collect());
        } else {
            break;
        }
    }
    Ok(EigenSolution {
        lambdas,
        vectors,
        lanczos: None,
    })
}

fn laso_poles(
    t1: &Transform1,
    parts: &Partitions,
    lambda_c: f64,
    cfg: &LanczosConfig,
    ctx: &ParCtx,
) -> Result<EigenSolution, ReduceError> {
    if parts.n == 0 {
        return Ok(EigenSolution::default());
    }
    let op = t1.e_prime_operator_ctx(parts, *ctx);
    debug_assert_eq!(op.dim(), parts.n);
    // An explicit thread choice in the Lanczos config wins; otherwise the
    // reduction's resolved thread count flows through.
    let cfg = if cfg.threads.is_none() {
        let mut c = cfg.clone();
        c.threads = Some(ctx.threads());
        c
    } else {
        cfg.clone()
    };
    let (pairs, stats) = eigs_above_with_stats(&op, lambda_c, &cfg)?;
    let mut lambdas = Vec::with_capacity(pairs.len());
    let mut vectors = Vec::with_capacity(pairs.len());
    for p in pairs {
        lambdas.push(p.value);
        vectors.push(p.vector);
    }
    Ok(EigenSolution {
        lambdas,
        vectors,
        lanczos: Some(stats),
    })
}
