//! Matrix-free PACT: pole analysis on the generalized pencil
//! `E u = λ D u` with a Lanczos recursion in the **D-inner product**,
//! requiring only solves against `D` — no Cholesky factor of `D` is ever
//! formed.
//!
//! Where the paper's RCFIT applies `E' = L⁻¹EL⁻ᵀ` through triangular
//! solves, this extension works with the operator `A = D⁻¹E`, which is
//! self-adjoint under `⟨x, y⟩_D = xᵀDy`. Its Ritz vectors `y` relate to
//! `E'`-eigenvectors by `u = Fᵀy`, so the reduced-model quantities come
//! out directly:
//!
//! ```text
//! R''[i, :] = Rᵀ yᵢ − Qᵀ D⁻¹ (E yᵢ)      (no factor needed)
//! ```
//!
//! Pair it with [`pact_sparse::pcg`] and the whole reduction runs in the
//! memory of the original sparse matrices plus a handful of vectors —
//! the logical endpoint of the paper's Section-4 memory argument, and an
//! extension recorded in DESIGN.md §6.

use std::time::Instant;

use pact_sparse::{axpy, dot, eig_tridiagonal, CsrMat, DMat, FactorError, IncompleteCholesky};

use crate::cutoff::CutoffSpec;
use crate::model::ReducedModel;
use crate::partition::Partitions;
use crate::reduce::{ReduceError, ReduceOptions, Reduction};
use crate::session::{finish_reduction, ReductionSession};
use crate::telemetry::Telemetry;

/// Abstraction over "solve `D x = b`" so both a direct factorization and
/// PCG can drive the matrix-free reduction.
pub trait DSolver {
    /// Solves `D x = b`.
    fn solve(&self, b: &[f64]) -> Vec<f64>;
    /// Modelled working memory in bytes.
    fn memory_bytes(&self) -> usize;
}

impl DSolver for pact_sparse::SparseCholesky {
    fn solve(&self, b: &[f64]) -> Vec<f64> {
        pact_sparse::SparseCholesky::solve(self, b)
    }
    fn memory_bytes(&self) -> usize {
        pact_sparse::SparseCholesky::memory_bytes(self)
    }
}

/// A PCG-backed `D`-solver with IC(0) preconditioning.
#[derive(Clone, Debug)]
pub struct PcgSolver {
    d: CsrMat,
    precond: IncompleteCholesky,
    /// Relative residual tolerance per solve.
    pub rel_tol: f64,
    /// Iteration cap per solve.
    pub max_iters: usize,
}

impl PcgSolver {
    /// Builds the solver (computes IC(0) of `D`).
    ///
    /// # Errors
    ///
    /// [`FactorError`] when `D` is structurally unsuitable (non-square or
    /// non-positive diagonal).
    pub fn new(d: &CsrMat) -> Result<Self, FactorError> {
        let precond = IncompleteCholesky::factor(d)?;
        Ok(PcgSolver {
            d: d.clone(),
            precond,
            rel_tol: 1e-12,
            max_iters: 10_000,
        })
    }
}

impl DSolver for PcgSolver {
    fn solve(&self, b: &[f64]) -> Vec<f64> {
        pact_sparse::pcg(&self.d, b, &self.precond, self.rel_tol, self.max_iters).x
    }
    fn memory_bytes(&self) -> usize {
        // IC(0) (zero fill) + a few CG work vectors.
        self.precond.nnz() * 16 + 6 * self.d.nrows() * 8
    }
}

/// Matrix-free PACT reduction: same contract as [`crate::reduce`], but
/// every interaction with `D` goes through `solver` and the pole
/// analysis runs on the `(E, D)` pencil in the D-inner product.
///
/// One-shot convenience over [`ReductionSession::reduce_matrix_free`].
///
/// # Errors
///
/// [`ReduceError::Lanczos`] when the pencil Lanczos cannot resolve the
/// spectrum near the cutoff.
pub fn reduce_matrix_free(
    parts: &Partitions,
    port_names: &[String],
    spec: &CutoffSpec,
    solver: &impl DSolver,
) -> Result<Reduction, ReduceError> {
    ReductionSession::new(ReduceOptions::new(*spec))
        .reduce_matrix_free(parts, port_names, spec, solver)
}

impl ReductionSession {
    /// Matrix-free PACT through this session: the moment and projection
    /// right-hand-side buffers come from the session's scratch pool, and
    /// the pencil-Lanczos backend choice is recorded in telemetry.
    ///
    /// # Errors
    ///
    /// [`ReduceError::Lanczos`] when the pencil Lanczos cannot resolve
    /// the spectrum near the cutoff.
    pub fn reduce_matrix_free(
        &mut self,
        parts: &Partitions,
        port_names: &[String],
        spec: &CutoffSpec,
        solver: &impl DSolver,
    ) -> Result<Reduction, ReduceError> {
        let start = Instant::now();
        let mut tel = Telemetry::new();
        let m = parts.m;
        let n = parts.n;
        // ---- moments, column at a time (identical algebra to Transform1,
        //      with `solver` in place of the factorization) ----
        let moments_start = Instant::now();
        let mut a1 = parts.a.to_dense();
        let mut b1 = parts.b.to_dense();
        let qt = parts.q.transpose();
        let rt = parts.r.transpose();
        let mut rhs = self.scratch.take(n);
        let fill_col = |t: &CsrMat, j: usize, v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x = 0.0);
            for (i, val) in t.row_iter(j) {
                v[i] = val;
            }
        };
        for j in 0..m {
            fill_col(&qt, j, &mut rhs);
            let x = solver.solve(&rhs);
            fill_col(&rt, j, &mut rhs);
            let y = solver.solve(&rhs);
            let z = solver.solve(&parts.e.matvec(&x));
            let qtx = parts.q.matvec_t(&x);
            let rtx = parts.r.matvec_t(&x);
            let qty = parts.q.matvec_t(&y);
            let qtz = parts.q.matvec_t(&z);
            for i in 0..m {
                a1[(i, j)] -= qtx[i];
                b1[(i, j)] += -rtx[i] - qty[i] + qtz[i];
            }
        }
        self.scratch.put(rhs);
        a1.symmetrize();
        b1.symmetrize();
        tel.record_phase("moments", moments_start.elapsed().as_secs_f64());

        // ---- pencil Lanczos in the D-inner product ----
        let eigen_start = Instant::now();
        let lambda_c = spec.lambda_c();
        let pairs = pencil_eigs_above(parts, solver, lambda_c).map_err(|iterations| {
            ReduceError::Lanczos(pact_lanczos::LanczosError::NotConverged { iterations })
        })?;
        tel.record_phase("eigen", eigen_start.elapsed().as_secs_f64());
        tel.record_eigen_choice("pencil", "pencil_lanczos", n, pairs.len());

        // ---- R'' rows straight from the pencil Ritz vectors ----
        let projection_start = Instant::now();
        let k = pairs.len();
        let mut r2 = DMat::zeros(k, m);
        let mut lambdas = Vec::with_capacity(k);
        for (p, (lam, y)) in pairs.iter().enumerate() {
            lambdas.push(*lam);
            let ey = parts.e.matvec(y);
            let z = solver.solve(&ey);
            let ry = parts.r.matvec_t(y);
            let qz = parts.q.matvec_t(&z);
            for j in 0..m {
                r2[(p, j)] = ry[j] - qz[j];
            }
        }
        tel.record_phase("projection", projection_start.elapsed().as_secs_f64());
        let model = ReducedModel {
            a1,
            b1,
            r2,
            lambdas,
            port_names: port_names.to_vec(),
        };
        Ok(finish_reduction(
            tel,
            start,
            model,
            n,
            0,
            solver.memory_bytes(),
            solver.memory_bytes() + 2 * m * m * 8 + (k + 4) * n * 8,
            None,
        ))
    }
}

/// Eigenpairs of `E y = λ D y` with `λ > lambda_min`, via D-inner-product
/// Lanczos with full reorthogonalization (the basis stays small — only
/// the retained poles' neighborhood is iterated).
///
/// Returns `(λ, y)` pairs sorted descending, with `y` normalized to
/// `yᵀDy = 1`; on failure returns the iteration count.
#[allow(clippy::type_complexity)]
fn pencil_eigs_above(
    parts: &Partitions,
    solver: &impl DSolver,
    lambda_min: f64,
) -> Result<Vec<(f64, Vec<f64>)>, usize> {
    let n = parts.n;
    if n == 0 {
        return Ok(Vec::new());
    }
    let d = &parts.d;
    let e = &parts.e;
    let max_iters = n.min(300);
    // Deterministic pseudo-random start.
    let mut w: Vec<f64> = (0..n)
        .map(|i| (((i * 2654435761) % 1000) as f64 / 500.0) - 1.0)
        .collect();
    // D-normalize.
    let d_norm = |v: &[f64]| dot(v, &d.matvec(v)).max(0.0).sqrt();
    let nrm = d_norm(&w);
    if nrm == 0.0 {
        return Ok(Vec::new());
    }
    pact_sparse::scale(1.0 / nrm, &mut w);

    let mut basis: Vec<Vec<f64>> = vec![w];
    let mut dbasis: Vec<Vec<f64>> = vec![d.matvec(&basis[0])]; // D·w cached
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    for j in 0..max_iters {
        // A w = D⁻¹ E w.
        let aw = solver.solve(&e.matvec(&basis[j]));
        let alpha = dot(&dbasis[j], &aw);
        alphas.push(alpha);
        let mut wt = aw;
        axpy(-alpha, &basis[j], &mut wt);
        if j > 0 {
            axpy(-betas[j - 1], &basis[j - 1], &mut wt);
        }
        // Full reorthogonalization in the D-inner product (two passes).
        for _ in 0..2 {
            for (b, db) in basis.iter().zip(&dbasis) {
                let proj = dot(db, &wt);
                axpy(-proj, b, &mut wt);
            }
        }
        let beta = d_norm(&wt);
        let k = alphas.len();
        let t_scale = alphas
            .iter()
            .fold(0.0f64, |m, a| m.max(a.abs()))
            .max(betas.iter().fold(0.0f64, |m, b| m.max(b.abs())))
            .max(1e-300);
        let breakdown = beta <= 1e-14 * t_scale.max(1.0);
        betas.push(if breakdown { 0.0 } else { beta });
        let at_end = breakdown || k == max_iters;
        if at_end || k.is_multiple_of(5) {
            let (vals, z) = eig_tridiagonal(&alphas, &betas[..k - 1], true).map_err(|_| k)?;
            let beta_k = betas[k - 1];
            let conv = |idx: usize| beta_k * z[(k - 1, idx)].abs() <= 1e-10 * t_scale;
            let all_above_done = vals
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v > lambda_min)
                .all(|(idx, _)| conv(idx));
            let boundary = vals.iter().enumerate().any(|(idx, &v)| {
                v <= lambda_min && beta_k * z[(k - 1, idx)].abs() <= 1e-5 * t_scale
            }) || breakdown;
            let resolved = all_above_done && boundary;
            if resolved || at_end {
                if !resolved && !breakdown {
                    return Err(k);
                }
                // Assemble Ritz vectors for retained eigenvalues.
                let mut out = Vec::new();
                for (idx, &lam) in vals.iter().enumerate().rev() {
                    if lam <= lambda_min {
                        break;
                    }
                    let mut y = vec![0.0; n];
                    for (row, b) in basis.iter().enumerate() {
                        axpy(z[(row, idx)], b, &mut y);
                    }
                    // D-normalize (should already be ≈1).
                    let nn = d_norm(&y);
                    if nn > 0.0 {
                        pact_sparse::scale(1.0 / nn, &mut y);
                    }
                    out.push((lam, y));
                }
                return Ok(out);
            }
        }
        if breakdown {
            break;
        }
        pact_sparse::scale(1.0 / beta, &mut wt);
        dbasis.push(d.matvec(&wt));
        basis.push(wt);
    }
    Ok(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reduce_network, ReduceOptions};
    use pact_netlist::{extract_rc, parse};
    use pact_sparse::{Ordering, SparseCholesky};

    fn ladder(nseg: usize) -> pact_netlist::RcNetwork {
        let mut deck = String::from("* l\nV1 p0 0 1\nM1 q pN 0 0 n\n.model n nmos()\n");
        for i in 0..nseg {
            let a = if i == 0 { "p0".into() } else { format!("n{i}") };
            let b = if i == nseg - 1 {
                "pN".into()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!(
                "R{i} {a} {b} {}\nC{i} {b} 0 {}\n",
                250.0 / nseg as f64,
                1.35e-12 / nseg as f64
            ));
        }
        extract_rc(&parse(&deck).unwrap(), &[]).unwrap().network
    }

    #[test]
    fn matrix_free_matches_factored_reduction() {
        let net = ladder(60);
        let spec = CutoffSpec::new(5e9, 0.05).unwrap();
        let factored = reduce_network(&net, &ReduceOptions::new(spec)).unwrap();
        let parts = Partitions::split(&net.stamp());
        let ports = net.node_names[..net.num_ports].to_vec();
        // Direct solver through the DSolver trait.
        let chol = SparseCholesky::factor(&parts.d, Ordering::NestedDissection).unwrap();
        let mf = reduce_matrix_free(&parts, &ports, &spec, &chol).unwrap();
        assert_eq!(mf.model.num_poles(), factored.model.num_poles());
        for (a, b) in mf.model.lambdas.iter().zip(&factored.model.lambdas) {
            assert!((a - b).abs() < 1e-8 * a, "{a} vs {b}");
        }
        for &f in &[1e8, 1e9, 5e9] {
            let ya = mf.model.y_at(f);
            let yb = factored.model.y_at(f);
            for i in 0..parts.m {
                for j in 0..parts.m {
                    assert!(
                        (ya[(i, j)] - yb[(i, j)]).abs() < 1e-7 * yb[(i, j)].abs().max(1e-12),
                        "Y mismatch at f={f:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn pcg_solver_reduction_matches_direct() {
        let net = ladder(40);
        let spec = CutoffSpec::new(5e9, 0.05).unwrap();
        let parts = Partitions::split(&net.stamp());
        let ports = net.node_names[..net.num_ports].to_vec();
        let chol = SparseCholesky::factor(&parts.d, Ordering::NestedDissection).unwrap();
        let direct = reduce_matrix_free(&parts, &ports, &spec, &chol).unwrap();
        let pcg = PcgSolver::new(&parts.d).unwrap();
        let iterative = reduce_matrix_free(&parts, &ports, &spec, &pcg).unwrap();
        assert_eq!(direct.model.num_poles(), iterative.model.num_poles());
        for (a, b) in direct.model.lambdas.iter().zip(&iterative.model.lambdas) {
            assert!((a - b).abs() < 1e-6 * a);
        }
        let f = 2e9;
        let ya = direct.model.y_at(f);
        let yb = iterative.model.y_at(f);
        for i in 0..parts.m {
            for j in 0..parts.m {
                assert!((ya[(i, j)] - yb[(i, j)]).abs() < 1e-6 * ya[(i, j)].abs().max(1e-12));
            }
        }
    }

    #[test]
    fn matrix_free_model_is_passive() {
        let net = ladder(50);
        let spec = CutoffSpec::new(10e9, 0.05).unwrap();
        let parts = Partitions::split(&net.stamp());
        let ports = net.node_names[..net.num_ports].to_vec();
        let pcg = PcgSolver::new(&parts.d).unwrap();
        let red = reduce_matrix_free(&parts, &ports, &spec, &pcg).unwrap();
        assert!(red.model.num_poles() >= 2);
        assert!(red.model.is_passive(1e-7));
    }

    #[test]
    fn pcg_memory_is_fill_free() {
        // The iterative solver's modelled memory must be proportional to
        // the input nonzeros, not to a factor's fill.
        let net = ladder(80);
        let parts = Partitions::split(&net.stamp());
        let pcg = PcgSolver::new(&parts.d).unwrap();
        let chol = SparseCholesky::factor(&parts.d, Ordering::Natural).unwrap();
        // On a tridiagonal ladder both are linear; just sanity-bound PCG.
        assert!(pcg.memory_bytes() <= 4 * chol.memory_bytes() + 64 * parts.n);
    }
}
