//! Post-reduction verification: sample the exact and reduced multiport
//! admittances over a frequency grid and report the error profile — the
//! check behind the paper's Figure 5 error bars, packaged as an API (and
//! the `rcfit --verify` flag).

use pact_sparse::{Complex64, ParCtx};

use crate::admittance::{SweepCounts, YEvaluator};
use crate::cutoff::CutoffSpec;
use crate::model::ReducedModel;
use crate::partition::Partitions;

/// One sampled frequency point of a verification run.
#[derive(Clone, Copy, Debug)]
pub struct ErrorSample {
    /// Frequency in Hz.
    pub frequency: f64,
    /// Worst entrywise deviation `|Y_red − Y_exact|` normalized by
    /// `‖Y_exact(f)‖_max`.
    pub worst_relative_error: f64,
}

/// Error-profile report from [`verify_reduction`].
#[derive(Clone, Debug)]
pub struct VerificationReport {
    /// Per-frequency samples (ascending frequency).
    pub samples: Vec<ErrorSample>,
    /// Largest error at or below the specification's `f_max`.
    pub worst_in_band: f64,
    /// Largest error anywhere in the sampled grid.
    pub worst_overall: f64,
    /// The specification's tolerance, for pass/fail.
    pub tolerance: f64,
    /// Smallest eigenvalues of the reduced `(G'', C'')` pair.
    pub passivity_margins: (f64, f64),
    /// Factor-vs-refactor effort of the exact-admittance sweep (one
    /// symbolic analysis serves the grid; see [`YEvaluator::y_grid`]).
    pub sweep_counts: SweepCounts,
}

impl VerificationReport {
    /// `true` when the in-band error respects the tolerance (with a small
    /// slack for multi-pole accumulation, see the cutoff module) and the
    /// model is passive.
    pub fn passes(&self) -> bool {
        self.worst_in_band <= 1.5 * self.tolerance
            && self.passivity_margins.0 >= -1e-9
            && self.passivity_margins.1 >= -1e-9
    }
}

/// Samples `points` log-spaced frequencies from `f_max/100` to
/// `2·f_max` and compares the reduced admittance against the exact one.
///
/// # Errors
///
/// Returns a message when the exact admittance cannot be evaluated
/// (singular `(D + sE)` — not possible for well-posed RC networks) or
/// the passivity eigensolve fails.
pub fn verify_reduction(
    parts: &Partitions,
    model: &ReducedModel,
    spec: &CutoffSpec,
    points: usize,
) -> Result<VerificationReport, String> {
    verify_reduction_with(parts, model, spec, points, ParCtx::new(None))
}

/// [`verify_reduction`] with an explicit parallel execution context:
/// the exact-admittance grid is factored symbolically once, refactored
/// numerically per point, and fanned across `ctx`'s workers. Results
/// are bit-identical at every thread count.
///
/// # Errors
///
/// See [`verify_reduction`].
pub fn verify_reduction_with(
    parts: &Partitions,
    model: &ReducedModel,
    spec: &CutoffSpec,
    points: usize,
    ctx: ParCtx,
) -> Result<VerificationReport, String> {
    let full = YEvaluator::new(parts);
    let f_max = spec.f_max();
    let f_lo = f_max / 100.0;
    let f_hi = f_max * 2.0;
    let m = model.num_ports();
    let freqs: Vec<f64> = (0..points.max(2))
        .map(|k| f_lo * (f_hi / f_lo).powf(k as f64 / (points.max(2) - 1) as f64))
        .collect();
    let (exact, sweep_counts) = full.y_grid(&freqs, ctx).map_err(|e| e.to_string())?;
    let mut samples = Vec::with_capacity(freqs.len());
    let mut worst_in_band = 0.0f64;
    let mut worst_overall = 0.0f64;
    for (&f, ye) in freqs.iter().zip(&exact) {
        let yr = model.y_at(f);
        let scale = max_abs(ye, m).max(1e-300);
        let mut worst = 0.0f64;
        for i in 0..m {
            for j in 0..m {
                worst = worst.max((yr[(i, j)] - ye[(i, j)]).abs() / scale);
            }
        }
        samples.push(ErrorSample {
            frequency: f,
            worst_relative_error: worst,
        });
        worst_overall = worst_overall.max(worst);
        if f <= f_max * (1.0 + 1e-12) {
            worst_in_band = worst_in_band.max(worst);
        }
    }
    let passivity_margins = model.passivity_margins().map_err(|e| e.to_string())?;
    Ok(VerificationReport {
        samples,
        worst_in_band,
        worst_overall,
        tolerance: spec.tolerance(),
        passivity_margins,
        sweep_counts,
    })
}

fn max_abs(y: &pact_sparse::DMat<Complex64>, m: usize) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..m {
        for j in 0..m {
            worst = worst.max(y[(i, j)].abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reduce_network, ReduceOptions};
    use pact_netlist::{extract_rc, parse};

    fn ladder() -> pact_netlist::RcNetwork {
        let mut deck = String::from("* l\nV1 p0 0 1\nM1 q pN 0 0 n\n.model n nmos()\n");
        for i in 0..40 {
            let a = if i == 0 { "p0".into() } else { format!("n{i}") };
            let b = if i == 39 {
                "pN".into()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!("R{i} {a} {b} 6.25\nC{i} {b} 0 33.75f\n"));
        }
        extract_rc(&parse(&deck).unwrap(), &[]).unwrap().network
    }

    #[test]
    fn good_reduction_passes_verification() {
        let net = ladder();
        let spec = CutoffSpec::new(3e9, 0.05).unwrap();
        let red = reduce_network(&net, &ReduceOptions::new(spec)).unwrap();
        let parts = Partitions::split(&net.stamp());
        let report = verify_reduction(&parts, &red.model, &spec, 25).unwrap();
        assert!(
            report.passes(),
            "in-band {:.3} %, margins {:?}",
            report.worst_in_band * 100.0,
            report.passivity_margins
        );
        assert_eq!(report.samples.len(), 25);
        // Error grows with frequency.
        assert!(report.worst_overall >= report.worst_in_band);
    }

    #[test]
    fn truncated_model_fails_verification() {
        // Drop the retained pole terms from a reduction whose cutoff is
        // low: the bare two-moment model cannot track the band.
        let net = ladder();
        let spec = CutoffSpec::new(20e9, 0.05).unwrap();
        let red = reduce_network(&net, &ReduceOptions::new(spec)).unwrap();
        assert!(red.model.num_poles() >= 2);
        let mut crippled = red.model.clone();
        crippled.lambdas.clear();
        crippled.r2 = pact_sparse::DMat::zeros(0, crippled.num_ports());
        let parts = Partitions::split(&net.stamp());
        let report = verify_reduction(&parts, &crippled, &spec, 25).unwrap();
        assert!(
            !report.passes(),
            "crippled model should fail: in-band {:.3} %",
            report.worst_in_band * 100.0
        );
    }
}
