//! A reusable reduction session: cached symbolic analyses plus scratch
//! arenas shared across reductions.
//!
//! Reducing many decks of the same extraction flow repeats the same
//! sparsity patterns over and over — the expensive symbolic Cholesky
//! analysis (ordering + elimination tree + fill pattern) of each pattern
//! only needs to happen once. [`ReductionSession`] owns a
//! pattern-keyed cache of [`SymbolicCholesky`] analyses and a pool of
//! scratch buffers; every reduction path (flat, hierarchical per-leaf,
//! matrix-free) runs through it. A one-shot [`crate::reduce`] call is
//! just a throwaway session.
//!
//! Determinism contract: a cache hit replays the cached permutation and
//! fill pattern through [`SymbolicCholesky::refactor`], which is
//! bit-identical to a fresh factorization of the same values (orderings
//! are functions of the pattern alone — see `pact_sparse`). Warm and
//! cold sessions therefore produce bit-identical reduced models; only
//! the `factorizations`/`refactorizations` telemetry counters differ.

use std::sync::Arc;
use std::time::Instant;

use pact_lanczos::LanczosStats;
use pact_netlist::{RcNetwork, Stamped};
use pact_sparse::{
    CholKernel, CscMat, CsrMat, FactorDiagnostics, FactorError, Ordering, ParCtx, PivotPolicy,
    SparseCholesky, SymbolicCholesky, SymbolicLu,
};

use crate::backend;
use crate::lru::LruCache;
use crate::model::ReducedModel;
use crate::partition::Partitions;
use crate::reduce::{
    remap_factor_index, ComponentReduction, ReduceError, ReduceOptions, ReduceStrategy, Reduction,
    ReductionStats,
};
use crate::telemetry::{Telemetry, Warning};
use crate::transform::Transform1;

/// Cached symbolic analyses the session keeps at most (default).
const CACHE_CAP: usize = 64;

/// Cache key: pattern fingerprint plus the ordering and kernel the
/// analysis was computed under.
pub(crate) type SymKey = (u64, Ordering, CholKernel);

/// One cached analysis as handed between sessions (hier leaf workers
/// report what they learned as a list of these).
pub(crate) type CacheEntry = (SymKey, Arc<SymbolicCholesky>);

/// A pattern-keyed, bounded-LRU store of symbolic Cholesky analyses,
/// built on the shared [`LruCache`] machinery.
///
/// Lookup compares the stored 64-bit pattern fingerprint — O(1) per
/// candidate, the point of the fingerprint — and then verifies the
/// exact pattern ([`SymbolicCholesky::matches`]) before trusting the
/// hit, so an FNV-1a collision between different patterns (~2⁻⁶⁴ per
/// pair) falls through to a fresh analysis whose insert *replaces* the
/// colliding entry (newest wins) instead of poisoning the cache.
#[derive(Clone)]
pub(crate) struct SymbolicCache {
    lru: LruCache<SymKey, Arc<SymbolicCholesky>>,
}

impl Default for SymbolicCache {
    fn default() -> SymbolicCache {
        SymbolicCache::with_capacity(CACHE_CAP)
    }
}

impl SymbolicCache {
    pub(crate) fn with_capacity(cap: usize) -> SymbolicCache {
        SymbolicCache {
            lru: LruCache::new(cap),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.lru.len()
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.lru.evictions()
    }

    pub(crate) fn lookup(
        &mut self,
        key: u64,
        ordering: Ordering,
        kernel: CholKernel,
        a: &CsrMat,
    ) -> Option<Arc<SymbolicCholesky>> {
        self.lru
            .get_if(&(key, ordering, kernel), |sym| sym.matches(a))
            .map(Arc::clone)
    }

    pub(crate) fn insert(
        &mut self,
        key: u64,
        ordering: Ordering,
        kernel: CholKernel,
        sym: Arc<SymbolicCholesky>,
    ) {
        self.lru.insert((key, ordering, kernel), sym);
    }

    /// Merges entries learned elsewhere (same-key entries replace).
    pub(crate) fn extend(&mut self, entries: Vec<CacheEntry>) {
        for (key, sym) in entries {
            self.lru.insert(key, sym);
        }
    }
}

/// The cache key for `a`'s sparsity pattern: the fingerprint the matrix
/// computed at construction time (values excluded by construction), so
/// keying a lookup is O(1) rather than a rehash of the index arrays.
fn pattern_key(a: &CsrMat) -> u64 {
    a.pattern_key()
}

/// A bounded pool of `f64` scratch buffers reused across reductions.
#[derive(Default)]
pub(crate) struct ScratchPool {
    bufs: Vec<Vec<f64>>,
}

impl ScratchPool {
    /// A zeroed buffer of length `len`, recycled when possible.
    pub(crate) fn take(&mut self, len: usize) -> Vec<f64> {
        match self.bufs.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the pool.
    pub(crate) fn put(&mut self, v: Vec<f64>) {
        if self.bufs.len() < 32 {
            self.bufs.push(v);
        }
    }
}

/// A reusable reduction context: options plus the symbolic-analysis
/// cache and scratch arenas shared by every reduction it runs.
///
/// ```
/// use pact::{CutoffSpec, ReduceOptions, ReductionSession};
/// use pact_netlist::{extract_rc, parse};
///
/// let deck = "* rc\nV1 a 0 1\nM1 x b 0 0 n\n.model n nmos()\n\
///             R1 a m 50\nR2 m b 50\nC1 m 0 1p\n.end\n";
/// let net = extract_rc(&parse(deck)?, &[])?.network;
/// let opts = ReduceOptions::new(CutoffSpec::new(5e9, 0.05)?);
/// let mut session = ReductionSession::new(opts);
/// // Same-topology decks after the first reuse the symbolic analysis.
/// let reductions = session.reduce_batch(&[net.clone(), net])?;
/// assert_eq!(reductions.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ReductionSession {
    opts: ReduceOptions,
    cache: SymbolicCache,
    /// Symbolic LU analyses of shifted-pencil union patterns, keyed by
    /// [`pact_sparse::CscPencil::pattern_key`] and verified exactly via
    /// [`SymbolicLu::matches`] before a hit is trusted — the multipoint
    /// strategy's analogue of the Cholesky cache above. One analysis
    /// serves every expansion point of a pencil (real at s = 0, complex
    /// on the imaginary axis) and every warm deck of the same topology.
    lu_cache: LruCache<u64, Arc<SymbolicLu>>,
    pub(crate) scratch: ScratchPool,
}

// A session is owned by one serving worker at a time and moves between
// threads (the `rcfitd` daemon keeps a pool of warm sessions per worker);
// the symbolic analyses it caches are shared read-only across sessions.
// Everything inside is plain owned storage (`Vec`s behind `Arc`s), so
// these hold structurally — the assertions pin the contract so a future
// field with interior mutability fails to compile here, not in the
// daemon.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<ReductionSession>();
    assert_send_sync::<SymbolicCache>();
    assert_send_sync::<SymbolicCholesky>();
    assert_send_sync::<SymbolicLu>();
};

impl ReductionSession {
    /// Creates a session with an empty cache.
    pub fn new(opts: ReduceOptions) -> ReductionSession {
        ReductionSession {
            opts,
            cache: SymbolicCache::default(),
            lu_cache: LruCache::new(CACHE_CAP),
            scratch: ScratchPool::default(),
        }
    }

    /// Creates a session whose symbolic cache holds at most `cap`
    /// patterns (least-recently-used eviction). Long-running servers pin
    /// this to bound per-worker memory; the default is 64.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(opts: ReduceOptions, cap: usize) -> ReductionSession {
        ReductionSession {
            opts,
            cache: SymbolicCache::with_capacity(cap),
            lu_cache: LruCache::new(cap),
            scratch: ScratchPool::default(),
        }
    }

    /// The options every reduction in this session runs under.
    pub fn options(&self) -> &ReduceOptions {
        &self.opts
    }

    /// Number of symbolic analyses currently cached.
    pub fn cached_patterns(&self) -> usize {
        self.cache.len()
    }

    /// Symbolic analyses evicted from the cache by capacity pressure
    /// since the session was created. A re-reduction of an evicted
    /// pattern pays the full analysis again (counted in the
    /// `factorizations` telemetry counter, not `refactorizations`).
    pub fn pattern_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// A snapshot of the cache (cheap: shared `Arc`s).
    pub(crate) fn cache_snapshot(&self) -> SymbolicCache {
        self.cache.clone()
    }

    /// Merges cache entries learned by child sessions.
    pub(crate) fn cache_extend(&mut self, entries: Vec<CacheEntry>) {
        self.cache.extend(entries);
    }

    /// Reduces stamped network matrices (see [`crate::reduce`]).
    ///
    /// # Errors
    ///
    /// See [`ReduceError`].
    pub fn reduce(
        &mut self,
        stamped: &Stamped,
        port_names: &[String],
    ) -> Result<Reduction, ReduceError> {
        self.reduce_stamped_scoped(stamped, port_names, &|i| format!("internal#{i}"), "flat")
    }

    /// Reduces a network with the strategy selected in the session's
    /// options (see [`crate::reduce_network`]).
    ///
    /// # Errors
    ///
    /// See [`ReduceError`].
    pub fn reduce_network(&mut self, network: &RcNetwork) -> Result<Reduction, ReduceError> {
        match self.opts.strategy {
            ReduceStrategy::Flat => self.reduce_network_flat(network, "flat"),
            ReduceStrategy::Hierarchical {
                max_block,
                max_depth,
            } => crate::hier::reduce_network_hier(self, network, max_block, max_depth),
            ReduceStrategy::Multipoint { num_points } => {
                crate::multipoint::reduce_network_multipoint(self, network, num_points)
            }
        }
    }

    /// Reduces a batch of decks, amortizing symbolic analysis across
    /// same-topology networks: after the first deck of a given sparsity
    /// pattern, the rest pay only the numeric refactorization.
    ///
    /// # Errors
    ///
    /// See [`ReduceError`]; the first failing deck aborts the batch.
    pub fn reduce_batch(&mut self, networks: &[RcNetwork]) -> Result<Vec<Reduction>, ReduceError> {
        networks
            .iter()
            .map(|net| self.reduce_network(net))
            .collect()
    }

    /// Reduces each connected component independently (see
    /// [`crate::reduce_network_components`]).
    ///
    /// # Errors
    ///
    /// See [`ReduceError`]; the first failing component aborts.
    pub fn reduce_network_components(
        &mut self,
        network: &RcNetwork,
    ) -> Result<ComponentReduction, ReduceError> {
        let mut reductions: Vec<Reduction> = Vec::new();
        let mut floating = 0usize;
        for comp in network.connected_components() {
            if comp.num_ports == 0 {
                floating += 1;
                continue;
            }
            let mut red = self
                .reduce_network(&comp)
                .map_err(|e| remap_factor_index(e, &comp, network))?;
            let k = reductions.len();
            for c in &mut red.telemetry.eigen_choices {
                c.scope = format!("component{k}:{}", c.scope);
            }
            reductions.push(red);
        }
        Ok(ComponentReduction {
            reductions,
            floating_dropped: floating,
        })
    }

    /// The flat reduction of one network, with warnings attributed to
    /// real node names and eigen choices recorded under `scope`.
    pub(crate) fn reduce_network_flat(
        &mut self,
        network: &RcNetwork,
        scope: &str,
    ) -> Result<Reduction, ReduceError> {
        let stamped = network.stamp();
        let ports: Vec<String> = network.node_names[..network.num_ports].to_vec();
        self.reduce_stamped_scoped(
            &stamped,
            &ports,
            &|i| {
                network
                    .node_names
                    .get(network.num_ports + i)
                    .cloned()
                    .unwrap_or_else(|| format!("internal#{i}"))
            },
            scope,
        )
    }

    /// The flat reduction body shared by every entry point: partition →
    /// (cached) factor → moments → pole analysis via the selected eigen
    /// backend → projection.
    pub(crate) fn reduce_stamped_scoped(
        &mut self,
        stamped: &Stamped,
        port_names: &[String],
        internal_name: &dyn Fn(usize) -> String,
        scope: &str,
    ) -> Result<Reduction, ReduceError> {
        let start = Instant::now();
        let mut tel = Telemetry::new();
        let ctx = ParCtx::new(self.opts.threads);
        let parts = tel.time("partition", || Partitions::split(stamped));

        let policy = match self.opts.pivot_relief {
            Some(rel_threshold) => PivotPolicy::Perturb { rel_threshold },
            None => PivotPolicy::Error,
        };
        let factor_start = Instant::now();
        let factored = self.factor_internal(&parts.d, policy);
        tel.record_phase("factor", factor_start.elapsed().as_secs_f64());
        let (chol, diag, cache_hit) = factored?;
        for p in &diag.perturbed {
            tel.warn(Warning::PerturbedPivot {
                node: internal_name(p.index),
                pivot: p.original,
                replaced_with: p.replaced_with,
            });
        }
        tel.counters.perturbed_pivots = diag.perturbed.len() as u64;
        if cache_hit {
            tel.counters.refactorizations = 1;
        } else {
            tel.counters.factorizations = 1;
        }
        tel.counters.supernode_count = chol.supernode_count() as u64;
        tel.counters.max_panel_cols = chol.max_panel_cols() as u64;
        tel.counters.panel_flops = chol.panel_flops();

        let t1 = tel.time("moments", || Transform1::with_factor(&parts, chol, &ctx));
        let lambda_c = self.opts.cutoff.lambda_c();

        let eigen_start = Instant::now();
        let poles = backend::compute_poles(
            &self.opts.eigen_backend,
            self.opts.dense_threshold,
            &t1,
            &parts,
            lambda_c,
            &ctx,
        );
        tel.record_phase("eigen", eigen_start.elapsed().as_secs_f64());
        let (sol, backend_name) = poles?;
        tel.record_eigen_choice(scope, backend_name, parts.n, sol.lambdas.len());

        let r2 = tel.time("projection", || t1.r2_rows_ctx(&parts, &sol.vectors, &ctx));
        let model = ReducedModel {
            a1: t1.a1.clone(),
            b1: t1.b1.clone(),
            r2,
            lambdas: sol.lambdas,
            port_names: port_names.to_vec(),
        };

        let m = parts.m;
        let k = model.lambdas.len();
        let chol_memory = t1.chol.memory_bytes();
        let modelled = chol_memory
            + 2 * m * m * 8              // A', B'
            + k * parts.n * 8            // Ritz vectors
            + k * m * 8                  // R''
            + 4 * parts.n * 8; // solver workspace
        Ok(finish_reduction(
            tel,
            start,
            model,
            parts.n,
            t1.chol.l_nnz(),
            chol_memory,
            modelled,
            sol.lanczos,
        ))
    }

    /// Number of shifted-pencil symbolic LU analyses currently cached
    /// (the multipoint strategy's analogue of [`Self::cached_patterns`]).
    pub fn cached_lu_patterns(&self) -> usize {
        self.lu_cache.len()
    }

    /// Looks up a cached symbolic LU analysis for the union pattern of a
    /// shifted pencil, verifying the exact pattern against `a0` (the
    /// pencil evaluated on its union structure) before trusting the
    /// fingerprint hit — same collision discipline as the Cholesky cache.
    pub(crate) fn lu_lookup(&mut self, key: u64, a0: &CscMat<f64>) -> Option<Arc<SymbolicLu>> {
        self.lu_cache
            .get_if(&key, |sym| sym.matches(a0))
            .map(Arc::clone)
    }

    /// Caches a symbolic LU analysis under a pencil's pattern key
    /// (same-key entries replace: newest wins).
    pub(crate) fn lu_insert(&mut self, key: u64, sym: Arc<SymbolicLu>) {
        self.lu_cache.insert(key, sym);
    }

    /// Factors `D`, reusing a cached symbolic analysis when the sparsity
    /// pattern has been seen before (bit-identical to a fresh factor).
    pub(crate) fn factor_internal(
        &mut self,
        d: &CsrMat,
        policy: PivotPolicy,
    ) -> Result<(SparseCholesky, FactorDiagnostics, bool), FactorError> {
        let kernel = self.opts.chol_kernel.resolved();
        let key = pattern_key(d);
        if let Some(sym) = self.cache.lookup(key, self.opts.ordering, kernel, d) {
            let (chol, diag) = sym.refactor(d, policy)?;
            return Ok((chol, diag, true));
        }
        let (chol, diag, sym) =
            SparseCholesky::factor_analyzed_with_kernel(d, self.opts.ordering, policy, kernel)?;
        self.cache
            .insert(key, self.opts.ordering, kernel, Arc::new(sym));
        Ok((chol, diag, false))
    }
}

/// Packages a finished reduction: statistics plus the shared counter
/// block (sizes, pole counts, Lanczos work) every path reports the same
/// way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_reduction(
    mut tel: Telemetry,
    start: Instant,
    model: ReducedModel,
    num_internal: usize,
    chol_nnz: usize,
    chol_memory_bytes: usize,
    modelled_memory_bytes: usize,
    lanczos: Option<LanczosStats>,
) -> Reduction {
    let m = model.port_names.len();
    let k = model.lambdas.len();
    let stats = ReductionStats {
        num_ports: m,
        num_internal,
        poles_retained: k,
        elapsed_seconds: start.elapsed().as_secs_f64(),
        chol_nnz,
        chol_memory_bytes,
        modelled_memory_bytes,
        lanczos,
    };

    let c = &mut tel.counters;
    c.num_ports = m as u64;
    c.num_internal = num_internal as u64;
    c.poles_retained = k as u64;
    c.poles_dropped = num_internal.saturating_sub(k) as u64;
    c.peak_matrix_dim = (m + num_internal) as u64;
    c.chol_nnz = chol_nnz as u64;
    if let Some(ls) = &stats.lanczos {
        c.lanczos_iterations = ls.iterations as u64;
        c.lanczos_matvecs = ls.matvecs as u64;
        c.lanczos_restarts = ls.restarts as u64;
        c.lanczos_reorthogonalizations = ls.orthogonalizations as u64;
    }

    Reduction {
        model,
        stats,
        telemetry: tel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::CutoffSpec;
    use pact_netlist::{extract_rc, parse};

    fn ladder(nseg: usize, r_total: f64, c_total: f64) -> RcNetwork {
        let mut deck = String::from("* l\nV1 p0 0 1\nM1 q pN 0 0 n\n.model n nmos()\n");
        for i in 0..nseg {
            let a = if i == 0 { "p0".into() } else { format!("n{i}") };
            let b = if i == nseg - 1 {
                "pN".into()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!(
                "R{i} {a} {b} {}\nC{i} {b} 0 {}\n",
                r_total / nseg as f64,
                c_total / nseg as f64
            ));
        }
        extract_rc(&parse(&deck).unwrap(), &[]).unwrap().network
    }

    #[test]
    fn warm_session_is_bit_identical_and_counts_refactorizations() {
        let net_a = ladder(40, 250.0, 1.35e-12);
        let net_b = ladder(40, 180.0, 0.9e-12); // same topology, new values
        let opts = ReduceOptions::new(CutoffSpec::new(5e9, 0.05).unwrap());

        let mut session = ReductionSession::new(opts.clone());
        let first = session.reduce_network(&net_a).unwrap();
        assert_eq!(session.cached_patterns(), 1);
        assert_eq!(first.telemetry.counters.factorizations, 1);
        assert_eq!(first.telemetry.counters.refactorizations, 0);

        let warm = session.reduce_network(&net_b).unwrap();
        assert_eq!(warm.telemetry.counters.factorizations, 0);
        assert_eq!(warm.telemetry.counters.refactorizations, 1);

        // Cold reduction of the same deck must be bit-identical.
        let cold = ReductionSession::new(opts).reduce_network(&net_b).unwrap();
        assert_eq!(warm.model.lambdas, cold.model.lambdas);
        assert_eq!(warm.model.a1.as_slice(), cold.model.a1.as_slice());
        assert_eq!(warm.model.b1.as_slice(), cold.model.b1.as_slice());
        assert_eq!(warm.model.r2.as_slice(), cold.model.r2.as_slice());
    }

    #[test]
    fn batch_reuses_one_symbolic_analysis_per_topology() {
        let decks: Vec<RcNetwork> = (0..5)
            .map(|i| ladder(30, 200.0 + 10.0 * i as f64, 1e-12))
            .collect();
        let opts = ReduceOptions::new(CutoffSpec::new(5e9, 0.05).unwrap());
        let mut session = ReductionSession::new(opts);
        let reds = session.reduce_batch(&decks).unwrap();
        assert_eq!(reds.len(), 5);
        assert_eq!(session.cached_patterns(), 1);
        let fresh: u64 = reds
            .iter()
            .map(|r| r.telemetry.counters.factorizations)
            .sum();
        let reused: u64 = reds
            .iter()
            .map(|r| r.telemetry.counters.refactorizations)
            .sum();
        assert_eq!(fresh, 1);
        assert_eq!(reused, 4);
    }

    #[test]
    fn eigen_choice_is_recorded_per_block() {
        let net = ladder(30, 250.0, 1.35e-12);
        let opts = ReduceOptions::new(CutoffSpec::new(5e9, 0.05).unwrap());
        let red = ReductionSession::new(opts).reduce_network(&net).unwrap();
        assert_eq!(red.telemetry.eigen_choices.len(), 1);
        let c = &red.telemetry.eigen_choices[0];
        assert_eq!(c.scope, "flat");
        assert_eq!(c.dim, net.num_internal() as u64);
        assert_eq!(c.poles, red.model.num_poles() as u64);
    }

    #[test]
    fn symbolic_cache_evicts_least_recently_used_under_cap_pressure() {
        let opts = ReduceOptions::new(CutoffSpec::new(5e9, 0.05).unwrap());
        let mut s = ReductionSession::with_capacity(opts, 2);
        let net_a = ladder(20, 200.0, 1.0e-12);
        let net_b = ladder(25, 200.0, 1.0e-12);
        let net_c = ladder(30, 200.0, 1.0e-12);

        s.reduce_network(&net_a).unwrap(); // cache: [A]
        s.reduce_network(&net_b).unwrap(); // cache: [A, B]
        assert_eq!(s.cached_patterns(), 2);

        // Touch A so B — not first-inserted A — is least recently used.
        let warm_a = s.reduce_network(&net_a).unwrap();
        assert_eq!(warm_a.telemetry.counters.refactorizations, 1);

        s.reduce_network(&net_c).unwrap(); // evicts B: cache [A, C]
        assert_eq!(s.cached_patterns(), 2);
        assert_eq!(s.pattern_evictions(), 1);

        // A survived the eviction (LRU, not FIFO): still a warm hit.
        let warm_a2 = s.reduce_network(&net_a).unwrap();
        assert_eq!(warm_a2.telemetry.counters.factorizations, 0);
        assert_eq!(warm_a2.telemetry.counters.refactorizations, 1);

        // B was evicted: re-reduction pays the full symbolic analysis
        // again and is counted in `factorizations`.
        let re_b = s.reduce_network(&net_b).unwrap();
        assert_eq!(re_b.telemetry.counters.factorizations, 1);
        assert_eq!(re_b.telemetry.counters.refactorizations, 0);
        assert_eq!(s.pattern_evictions(), 2, "inserting B evicted C");
    }

    #[test]
    fn fingerprint_collision_falls_through_exact_match_and_replaces() {
        let net_a = ladder(10, 100.0, 1e-12);
        let net_b = ladder(16, 100.0, 1e-12);
        let da = Partitions::split(&net_a.stamp()).d;
        let db = Partitions::split(&net_b.stamp()).d;
        let ordering = Ordering::NestedDissection;
        let kernel = CholKernel::Auto.resolved();
        let factor = |d: &CsrMat| {
            let (_, _, sym) = SparseCholesky::factor_analyzed_with_kernel(
                d,
                ordering,
                PivotPolicy::Error,
                kernel,
            )
            .unwrap();
            Arc::new(sym)
        };

        // Forge an FNV-1a collision: store A's analysis under B's
        // fingerprint. The exact `matches` verification must reject it.
        let mut cache = SymbolicCache::with_capacity(4);
        cache.insert(db.pattern_key(), ordering, kernel, factor(&da));
        assert!(
            cache
                .lookup(db.pattern_key(), ordering, kernel, &db)
                .is_none(),
            "a colliding fingerprint must fall through the exact pattern check"
        );

        // The fresh analysis of B then *replaces* the colliding entry
        // (newest wins) instead of being shadowed by it forever.
        cache.insert(db.pattern_key(), ordering, kernel, factor(&db));
        assert_eq!(cache.len(), 1, "collision resolves by replacement");
        assert!(cache
            .lookup(db.pattern_key(), ordering, kernel, &db)
            .is_some());
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let mut pool = ScratchPool::default();
        let mut v = pool.take(8);
        v[3] = 7.0;
        pool.put(v);
        let w = pool.take(4);
        assert_eq!(w, vec![0.0; 4], "recycled buffers are zeroed");
    }
}
