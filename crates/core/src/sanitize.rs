//! Pre-reduction network sanitization: graceful degradation for
//! degenerate inputs.
//!
//! PACT's stability theorem requires the internal conductance block `D`
//! to be strictly positive definite, which fails for extracted netlists
//! containing *floating* internal nodes — nodes with no resistive path
//! to any port or to ground (e.g. capacitor-only coupling nets).
//! [`sanitize_network`] prunes exactly those nodes before Transform 1
//! and records each decision as a [`Warning`], so the reduction either
//! succeeds on the well-posed subnetwork or fails with a typed error —
//! never a panic.
//!
//! Pruning a capacitively-coupled island discards its (purely
//! high-frequency) influence on the ports; this is the documented
//! approximation of the degradation path — DC and low-frequency
//! behavior are untouched because no resistive path existed.
//!
//! All decisions are functions of the network topology alone, so the
//! output and the warning list are deterministic and thread-independent.

use std::collections::VecDeque;

use pact_netlist::{Branch, NetworkError, RcNetwork};

use crate::telemetry::{Telemetry, Warning};

/// Result of [`sanitize_network`]: the cleaned network plus the record
/// of everything that was repaired or removed.
#[derive(Clone, Debug)]
pub struct SanitizeReport {
    /// The sanitized network (ports-first order preserved).
    pub network: RcNetwork,
    /// One warning per repaired anomaly, in deterministic order.
    pub warnings: Vec<Warning>,
}

impl SanitizeReport {
    /// Folds this report into a telemetry record: appends the warnings
    /// and bumps the matching counters.
    pub fn record(&self, t: &mut Telemetry) {
        for w in &self.warnings {
            match w {
                Warning::PrunedFloatingInternal { .. } => t.counters.pruned_internal_nodes += 1,
                Warning::DisconnectedPort { .. } => t.counters.disconnected_ports += 1,
                Warning::ZeroValueElement { .. } => t.counters.zero_value_elements += 1,
                _ => {}
            }
            t.warn(w.clone());
        }
    }
}

fn node_label(net: &RcNetwork, node: Option<usize>) -> String {
    match node {
        None => "0".to_owned(),
        Some(i) => net
            .node_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("#{i}")),
    }
}

fn branch_label(kind: char, net: &RcNetwork, b: &Branch) -> String {
    format!("{kind}({},{})", node_label(net, b.a), node_label(net, b.b))
}

/// Validates element values and prunes floating internal nodes.
///
/// Steps, in order:
///
/// 1. **Value validation** — non-finite resistor/capacitor values,
///    non-positive resistances, and negative capacitances are rejected
///    with a typed [`NetworkError`] (they would otherwise inject
///    NaN/Inf into the stamped matrices and poison every downstream
///    kernel). Zero-valued capacitors are *dropped* with a warning
///    (they stamp nothing).
/// 2. **Floating-node pruning** — breadth-first search over resistor
///    branches seeded at every port and every resistively-grounded
///    node. Internal nodes the search never reaches have no DC path
///    anywhere: they make `D` singular and are removed together with
///    every branch touching them ([`Warning::PrunedFloatingInternal`]
///    per node).
/// 3. **Disconnected-port detection** — ports with no remaining branch
///    are kept (their admittance rows are exactly zero) but reported
///    via [`Warning::DisconnectedPort`].
///
/// # Errors
///
/// [`NetworkError`] for non-physical element values (attribution is by
/// node pair, since [`Branch`] carries no element name).
pub fn sanitize_network(net: &RcNetwork) -> Result<SanitizeReport, NetworkError> {
    let n = net.num_nodes();
    let mut warnings = Vec::new();

    // 1. Value validation + zero-cap dropping.
    for r in &net.resistors {
        if !r.value.is_finite() {
            return Err(NetworkError::NonFiniteValue {
                name: branch_label('R', net, r),
                value: r.value,
            });
        }
        if r.value <= 0.0 {
            return Err(NetworkError::NonPositiveResistor {
                name: branch_label('R', net, r),
                ohms: r.value,
            });
        }
    }
    let mut capacitors = Vec::with_capacity(net.capacitors.len());
    for c in &net.capacitors {
        if !c.value.is_finite() {
            return Err(NetworkError::NonFiniteValue {
                name: branch_label('C', net, c),
                value: c.value,
            });
        }
        if c.value < 0.0 {
            return Err(NetworkError::NegativeCapacitor {
                name: branch_label('C', net, c),
                farads: c.value,
            });
        }
        if c.value == 0.0 {
            warnings.push(Warning::ZeroValueElement {
                name: branch_label('C', net, c),
            });
        } else {
            capacitors.push(*c);
        }
    }

    // 2. Resistive reachability from ports and grounded nodes.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut grounded = vec![false; n];
    for r in &net.resistors {
        match (r.a, r.b) {
            (Some(a), Some(b)) if a != b => {
                adj[a].push(b);
                adj[b].push(a);
            }
            (Some(a), None) | (None, Some(a)) => grounded[a] = true,
            _ => {}
        }
    }
    let mut reached = vec![false; n];
    let mut queue: VecDeque<usize> = (0..n)
        .filter(|&v| v < net.num_ports || grounded[v])
        .collect();
    for &v in &queue {
        reached[v] = true;
    }
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v] {
            if !reached[w] {
                reached[w] = true;
                queue.push_back(w);
            }
        }
    }
    for (v, hit) in reached.iter().enumerate().skip(net.num_ports) {
        if !hit {
            warnings.push(Warning::PrunedFloatingInternal {
                node: node_label(net, Some(v)),
            });
        }
    }

    // Renumber: ports keep their slots; surviving internals compact.
    let mut remap = vec![usize::MAX; n];
    let mut node_names = Vec::with_capacity(n);
    for v in 0..n {
        if reached[v] {
            remap[v] = node_names.len();
            node_names.push(net.node_names[v].clone());
        }
    }
    let keep = |b: &Branch| -> bool {
        b.a.is_none_or(|v| remap[v] != usize::MAX) && b.b.is_none_or(|v| remap[v] != usize::MAX)
    };
    let map_branch = |b: &Branch| -> Branch {
        Branch {
            a: b.a.map(|v| remap[v]),
            b: b.b.map(|v| remap[v]),
            value: b.value,
        }
    };
    let network = RcNetwork {
        node_names,
        num_ports: net.num_ports,
        resistors: net
            .resistors
            .iter()
            .filter(|b| keep(b))
            .map(map_branch)
            .collect(),
        capacitors: capacitors
            .iter()
            .filter(|b| keep(b))
            .map(map_branch)
            .collect(),
    };

    // 3. Disconnected ports (checked on the sanitized element set).
    let mut touched = vec![false; network.num_nodes()];
    for b in network.resistors.iter().chain(&network.capacitors) {
        if let Some(a) = b.a {
            touched[a] = true;
        }
        if let Some(bb) = b.b {
            touched[bb] = true;
        }
    }
    for (p, hit) in touched.iter().enumerate().take(network.num_ports) {
        if !hit {
            warnings.push(Warning::DisconnectedPort {
                node: network.node_names[p].clone(),
            });
        }
    }

    Ok(SanitizeReport { network, warnings })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(
        ports: usize,
        names: &[&str],
        resistors: &[(Option<usize>, Option<usize>, f64)],
        capacitors: &[(Option<usize>, Option<usize>, f64)],
    ) -> RcNetwork {
        let branch = |&(a, b, value): &(Option<usize>, Option<usize>, f64)| Branch { a, b, value };
        RcNetwork {
            node_names: names.iter().map(|s| (*s).to_owned()).collect(),
            num_ports: ports,
            resistors: resistors.iter().map(branch).collect(),
            capacitors: capacitors.iter().map(branch).collect(),
        }
    }

    #[test]
    fn well_formed_network_passes_through() {
        let n = net(
            1,
            &["p", "a"],
            &[(Some(0), Some(1), 100.0), (Some(1), None, 50.0)],
            &[(Some(1), None, 1e-12)],
        );
        let rep = sanitize_network(&n).unwrap();
        assert_eq!(rep.network, n);
        assert!(rep.warnings.is_empty());
    }

    #[test]
    fn cap_only_internal_node_is_pruned() {
        // `b` hangs off `a` through a capacitor only: no DC path.
        let n = net(
            1,
            &["p", "a", "b"],
            &[(Some(0), Some(1), 100.0)],
            &[(Some(1), Some(2), 1e-12), (Some(2), None, 1e-12)],
        );
        let rep = sanitize_network(&n).unwrap();
        assert_eq!(rep.network.num_nodes(), 2);
        assert_eq!(rep.network.num_ports, 1);
        assert!(rep.network.node_names.iter().all(|s| s != "b"));
        assert_eq!(rep.network.capacitors.len(), 0, "b's caps go with it");
        assert!(matches!(
            rep.warnings.as_slice(),
            [Warning::PrunedFloatingInternal { node }] if node == "b"
        ));
    }

    #[test]
    fn resistively_grounded_island_is_kept() {
        // `a` has a resistor to ground but no path to the port: D is
        // fine, so the node stays (component splitting handles it).
        let n = net(
            1,
            &["p", "a"],
            &[(Some(0), None, 10.0), (Some(1), None, 100.0)],
            &[(Some(1), None, 1e-12)],
        );
        let rep = sanitize_network(&n).unwrap();
        assert_eq!(rep.network.num_nodes(), 2);
        assert!(rep.warnings.is_empty());
    }

    #[test]
    fn resistive_island_without_ground_is_pruned() {
        // Nodes `a`–`b` connect to each other resistively but to
        // nothing else: the whole island is floating.
        let n = net(
            1,
            &["p", "a", "b"],
            &[(Some(0), None, 10.0), (Some(1), Some(2), 100.0)],
            &[(Some(1), None, 1e-12)],
        );
        let rep = sanitize_network(&n).unwrap();
        assert_eq!(rep.network.num_nodes(), 1);
        assert_eq!(rep.network.resistors.len(), 1);
        assert_eq!(rep.network.capacitors.len(), 0);
        assert_eq!(rep.warnings.len(), 2);
    }

    #[test]
    fn zero_cap_dropped_with_warning() {
        let n = net(
            1,
            &["p", "a"],
            &[(Some(0), Some(1), 100.0), (Some(1), None, 1.0)],
            &[(Some(1), None, 0.0), (Some(0), None, 1e-12)],
        );
        let rep = sanitize_network(&n).unwrap();
        assert_eq!(rep.network.capacitors.len(), 1);
        assert!(rep
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::ZeroValueElement { .. })));
    }

    #[test]
    fn disconnected_port_is_reported_but_kept() {
        let n = net(
            2,
            &["p0", "p1", "a"],
            &[(Some(0), Some(2), 100.0), (Some(2), None, 1.0)],
            &[],
        );
        let rep = sanitize_network(&n).unwrap();
        assert_eq!(rep.network.num_ports, 2);
        assert!(matches!(
            rep.warnings.as_slice(),
            [Warning::DisconnectedPort { node }] if node == "p1"
        ));
    }

    #[test]
    fn nonfinite_values_are_typed_errors() {
        let bad_r = net(1, &["p"], &[(Some(0), None, f64::NAN)], &[]);
        assert!(matches!(
            sanitize_network(&bad_r),
            Err(NetworkError::NonFiniteValue { .. })
        ));
        let bad_c = net(
            1,
            &["p"],
            &[(Some(0), None, 1.0)],
            &[(Some(0), None, f64::INFINITY)],
        );
        assert!(matches!(
            sanitize_network(&bad_c),
            Err(NetworkError::NonFiniteValue { .. })
        ));
        let zero_r = net(1, &["p"], &[(Some(0), None, 0.0)], &[]);
        assert!(matches!(
            sanitize_network(&zero_r),
            Err(NetworkError::NonPositiveResistor { .. })
        ));
    }

    #[test]
    fn report_record_updates_counters() {
        let n = net(
            1,
            &["p", "a"],
            &[(Some(0), None, 10.0)],
            &[(Some(1), None, 1e-12), (Some(0), None, 0.0)],
        );
        let rep = sanitize_network(&n).unwrap();
        let mut t = Telemetry::new();
        rep.record(&mut t);
        assert_eq!(t.counters.pruned_internal_nodes, 1);
        assert_eq!(t.counters.zero_value_elements, 1);
        assert_eq!(t.warnings.len(), rep.warnings.len());
    }
}
