//! The reduced-order model produced by PACT and its evaluations.
//!
//! After both congruence transforms and pole dropping, the network is
//! described by (eq. 10–12 of the paper):
//!
//! ```text
//! G'' = [ A'  0 ]        C'' = [ B'   R''ᵀ ]
//!       [ 0   I ]               [ R''  Λ    ]
//!
//! Y(s) = A' + sB' − Σᵢ s² rᵢᵀrᵢ / (1 + s λᵢ)
//! ```
//!
//! with one retained pole per row `rᵢ` of `R''` at `s = −1/λᵢ`.

use pact_netlist::{sparsify_preserving_passivity, unstamp, Element};
use pact_sparse::{sym_eig, Complex64, DMat, EigenError};

/// A passive reduced-order multiport RC model.
#[derive(Clone, Debug)]
pub struct ReducedModel {
    /// Exact DC port conductance `A'` (`m×m`).
    pub a1: DMat<f64>,
    /// Exact first-moment port susceptance `B'` (`m×m`).
    pub b1: DMat<f64>,
    /// Transformed connection rows `R''` (`k×m`), one per retained pole.
    pub r2: DMat<f64>,
    /// Retained eigenvalues `λᵢ` of `E'` (descending), each a pole at
    /// `−1/λᵢ` rad/s.
    pub lambdas: Vec<f64>,
    /// Port node names (length `m`), preserved for netlist output.
    pub port_names: Vec<String>,
}

impl ReducedModel {
    /// Number of ports `m`.
    pub fn num_ports(&self) -> usize {
        self.a1.nrows()
    }

    /// Number of retained poles = internal nodes of the reduced network.
    pub fn num_poles(&self) -> usize {
        self.lambdas.len()
    }

    /// Retained pole frequencies in Hz (ascending).
    pub fn pole_frequencies(&self) -> Vec<f64> {
        let mut f: Vec<f64> = self
            .lambdas
            .iter()
            .map(|l| 1.0 / (2.0 * std::f64::consts::PI * l))
            .collect();
        f.sort_by(|a, b| a.partial_cmp(b).unwrap());
        f
    }

    /// Evaluates the reduced multiport admittance `Y(jω)` at frequency
    /// `f` Hz (eq. 12).
    pub fn y_at(&self, f: f64) -> DMat<Complex64> {
        let m = self.num_ports();
        let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * f);
        let s2 = s * s;
        let mut y = DMat::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                y[(i, j)] = Complex64::from_real(self.a1[(i, j)]) + s.scale(self.b1[(i, j)]);
            }
        }
        for (p, &lam) in self.lambdas.iter().enumerate() {
            let denom = Complex64::ONE + s.scale(lam);
            let coef = s2 / denom;
            for i in 0..m {
                let ri = self.r2[(p, i)];
                if ri == 0.0 {
                    continue;
                }
                for j in 0..m {
                    let rj = self.r2[(p, j)];
                    if rj != 0.0 {
                        y[(i, j)] -= coef.scale(ri * rj);
                    }
                }
            }
        }
        y
    }

    /// Assembles the reduced `(G'', C'')` matrices of dimension `m + k`
    /// (ports first, then one internal node per retained pole).
    pub fn to_matrices(&self) -> (DMat<f64>, DMat<f64>) {
        self.matrices_with_scale(false)
    }

    /// Like [`ReducedModel::to_matrices`], but each internal row is
    /// rescaled by the diagonal congruence `α_p = −Σ_j r''_pj / λ_p`, which
    /// zeroes the internal rows' capacitive ground terms. `Y(s)` is
    /// invariant; the emitted netlist needs one fewer element per pole and
    /// its values sit in a physical range (this is the normalization behind
    /// the paper's eq. 20, whose internal diagonal is 32 mS rather than
    /// 1 S).
    ///
    /// Poles whose residue row sum (nearly) cancels — every antisymmetric
    /// mode of a structurally symmetric network — are left in the raw
    /// `α = 1` basis: eq. 20's scaling degenerates there (`α → 0`), and
    /// while the rescaled stamp stays algebraically exact, its
    /// `α² ≈ 1e-33 S` internal diagonal drowns under any simulator's GMIN
    /// and rounding floor, silently corrupting that pole's contribution.
    pub fn to_matrices_normalized(&self) -> (DMat<f64>, DMat<f64>) {
        self.matrices_with_scale(true)
    }

    fn matrices_with_scale(&self, normalize: bool) -> (DMat<f64>, DMat<f64>) {
        // Smallest |α| eq. 20 is allowed to produce: keeps the internal
        // conductance α² at or above 100 µS, ~8 decades clear of SPICE
        // GMIN (1e-12 S) so the realized deck simulates to full accuracy.
        const ALPHA_MIN: f64 = 1e-2;
        let m = self.num_ports();
        let k = self.num_poles();
        let dim = m + k;
        let mut g = DMat::zeros(dim, dim);
        let mut c = DMat::zeros(dim, dim);
        for i in 0..m {
            for j in 0..m {
                g[(i, j)] = self.a1[(i, j)];
                c[(i, j)] = self.b1[(i, j)];
            }
        }
        for p in 0..k {
            let row_sum: f64 = (0..m).map(|j| self.r2[(p, j)]).sum();
            let alpha = if normalize && self.lambdas[p] > 0.0 {
                let a = -row_sum / self.lambdas[p];
                if a.abs() >= ALPHA_MIN {
                    a
                } else {
                    1.0
                }
            } else {
                1.0
            };
            g[(m + p, m + p)] = alpha * alpha;
            c[(m + p, m + p)] = alpha * alpha * self.lambdas[p];
            for j in 0..m {
                c[(m + p, j)] = alpha * self.r2[(p, j)];
                c[(j, m + p)] = alpha * self.r2[(p, j)];
            }
        }
        (g, c)
    }

    /// Verifies passivity: both reduced matrices must be non-negative
    /// definite (the paper's Section 3 invariant). Returns the smallest
    /// eigenvalue of each, which must be ≥ `−tol·‖M‖`.
    ///
    /// # Errors
    ///
    /// Propagates [`EigenError`] from the dense eigensolver.
    pub fn passivity_margins(&self) -> Result<(f64, f64), EigenError> {
        let (g, c) = self.to_matrices();
        let ge = sym_eig(&g)?;
        let ce = sym_eig(&c)?;
        Ok((
            ge.values.first().copied().unwrap_or(0.0),
            ce.values.first().copied().unwrap_or(0.0),
        ))
    }

    /// `true` when both matrices are non-negative definite within a
    /// relative tolerance.
    pub fn is_passive(&self, rel_tol: f64) -> bool {
        match self.passivity_margins() {
            Ok((gmin, cmin)) => {
                let (g, c) = self.to_matrices();
                gmin >= -rel_tol * g.norm_max().max(1e-300)
                    && cmin >= -rel_tol * c.norm_max().max(1e-300)
            }
            Err(_) => false,
        }
    }

    /// Converts the reduced model into SPICE RC elements (possibly with
    /// negative values — reduced models generally need them), applying the
    /// sparsification heuristic with threshold `sparsify_tol` (0 disables).
    ///
    /// Internal nodes are named `<prefix>_p<i>`.
    pub fn to_netlist_elements(&self, prefix: &str, sparsify_tol: f64) -> Vec<Element> {
        let (mut g, mut c) = self.to_matrices_normalized();
        if sparsify_tol > 0.0 {
            sparsify_preserving_passivity(&mut g, sparsify_tol);
            sparsify_preserving_passivity(&mut c, sparsify_tol);
        }
        let mut names = self.port_names.clone();
        for i in 0..self.num_poles() {
            names.push(format!("{prefix}_p{i}"));
        }
        unstamp(&g, &c, &names, prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> ReducedModel {
        // 2 ports, 1 pole — shaped like the paper's eq. (20) example.
        ReducedModel {
            a1: DMat::from_rows(&[&[4e-3, -4e-3], &[-4e-3, 4e-3]]),
            b1: DMat::from_rows(&[&[443e-15, 225e-15], &[225e-15, 457e-15]]),
            r2: DMat::from_rows(&[&[-16.5e-9, -16.5e-9]]),
            lambdas: vec![1.0 / (2.0 * std::f64::consts::PI * 4.7e9)],
            port_names: vec!["1".into(), "2".into()],
        }
    }

    #[test]
    fn counts_and_pole_frequencies() {
        let m = toy_model();
        assert_eq!(m.num_ports(), 2);
        assert_eq!(m.num_poles(), 1);
        let f = m.pole_frequencies();
        assert!((f[0] - 4.7e9).abs() / 4.7e9 < 1e-12);
    }

    #[test]
    fn dc_admittance_is_a1() {
        let m = toy_model();
        let y0 = m.y_at(0.0);
        for i in 0..2 {
            for j in 0..2 {
                assert!((y0[(i, j)].re - m.a1[(i, j)]).abs() < 1e-18);
                assert_eq!(y0[(i, j)].im, 0.0);
            }
        }
    }

    #[test]
    fn low_frequency_slope_is_b1() {
        let m = toy_model();
        let f = 1e2; // far below the pole: Y ≈ A' + jωB' + O(ω³)
        let y = m.y_at(f);
        let w = 2.0 * std::f64::consts::PI * f;
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (y[(i, j)].im - w * m.b1[(i, j)]).abs() < 1e-4 * w * m.b1[(i, j)].abs(),
                    "imag mismatch at ({i},{j}): {} vs {}",
                    y[(i, j)].im,
                    w * m.b1[(i, j)]
                );
            }
        }
    }

    #[test]
    fn matrices_shape_and_symmetry() {
        let m = toy_model();
        let (g, c) = m.to_matrices();
        assert_eq!(g.nrows(), 3);
        assert_eq!(g.asymmetry(), 0.0);
        assert_eq!(c.asymmetry(), 0.0);
        assert_eq!(g[(2, 2)], 1.0);
        assert_eq!(c[(2, 2)], m.lambdas[0]);
        assert_eq!(c[(2, 0)], m.r2[(0, 0)]);
    }

    #[test]
    fn netlist_elements_restamp_to_matrices() {
        let m = toy_model();
        let els = m.to_netlist_elements("red", 0.0);
        assert!(!els.is_empty());
        // Every element references a known node.
        for e in &els {
            for n in e.nodes() {
                assert!(
                    n == "0" || n == "1" || n == "2" || n.starts_with("red_p"),
                    "unknown node {n}"
                );
            }
        }
    }

    #[test]
    fn normalized_matrices_zero_internal_ground_caps() {
        let m = toy_model();
        let (g, c) = m.to_matrices_normalized();
        // Internal row sum of C must be (numerically) zero.
        let row: f64 = (0..3).map(|j| c[(2, j)]).sum();
        assert!(row.abs() < 1e-18 * c.norm_max());
        // Same pole: λ = C/G on the internal diagonal is preserved.
        assert!((c[(2, 2)] / g[(2, 2)] - m.lambdas[0]).abs() < 1e-22);
        // And matches the paper's eq. 20 shape: off-diagonals of C equal
        // the negated half of the internal diagonal.
        assert!((c[(2, 0)] - c[(2, 1)]).abs() < 1e-25);
        assert!((c[(2, 2)] + 2.0 * c[(2, 0)]).abs() < 1e-18 * c.norm_max());
    }

    #[test]
    fn y_matrix_is_symmetric_at_all_frequencies() {
        let m = toy_model();
        for &f in &[1e6, 1e8, 1e9, 5e9, 2e10] {
            let y = m.y_at(f);
            for i in 0..2 {
                for j in 0..i {
                    assert!((y[(i, j)] - y[(j, i)]).abs() < 1e-18);
                }
            }
        }
    }
}
