//! Partitioning of the stamped network matrices (eq. 2 of the paper).
//!
//! With ports ordered first, `G` splits into the port block `A`, the
//! connection block `Q` and the internal block `D`; `C` splits likewise
//! into `B`, `R` and `E`.

use pact_netlist::Stamped;
use pact_sparse::CsrMat;

/// The six partitions of `(G + sC)` for an `m`-port, `n`-internal-node RC
/// network.
#[derive(Clone, Debug)]
pub struct Partitions {
    /// Number of ports `m`.
    pub m: usize,
    /// Number of internal nodes `n`.
    pub n: usize,
    /// Port conductance block `A` (`m×m`, symmetric NND).
    pub a: CsrMat,
    /// Port susceptance block `B` (`m×m`, symmetric NND).
    pub b: CsrMat,
    /// Connection conductance block `Q` (`n×m`).
    pub q: CsrMat,
    /// Connection susceptance block `R` (`n×m`).
    pub r: CsrMat,
    /// Internal conductance block `D` (`n×n`, symmetric PD when every
    /// internal node has a DC path to a port).
    pub d: CsrMat,
    /// Internal susceptance block `E` (`n×n`, symmetric NND).
    pub e: CsrMat,
}

impl Partitions {
    /// Splits stamped `G`/`C` matrices into the six partitions.
    ///
    /// # Panics
    ///
    /// Panics if `stamped.num_ports` exceeds the matrix dimension.
    pub fn split(stamped: &Stamped) -> Self {
        let total = stamped.g.nrows();
        let m = stamped.num_ports;
        assert!(m <= total, "more ports than nodes");
        let n = total - m;
        let ports: Vec<usize> = (0..m).collect();
        let internals: Vec<usize> = (m..total).collect();
        Partitions {
            m,
            n,
            a: stamped.g.submatrix(&ports, &ports),
            b: stamped.c.submatrix(&ports, &ports),
            q: stamped.g.submatrix(&internals, &ports),
            r: stamped.c.submatrix(&internals, &ports),
            d: stamped.g.submatrix(&internals, &internals),
            e: stamped.c.submatrix(&internals, &internals),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::{extract_rc, parse};

    fn stamped() -> (Stamped, usize) {
        let nl = parse(
            "\
* 2-port, 2-internal ladder
V1 p1 0 1
R1 p1 i1 100
R2 i1 i2 100
R3 i2 p2 100
C1 i1 0 1p
C2 i2 0 1p
Rload p2 0 1k
M1 x p2 0 0 nch
.model nch nmos()
.end
",
        )
        .unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        let st = ex.network.stamp();
        let m = st.num_ports;
        (st, m)
    }

    #[test]
    fn shapes_are_consistent() {
        let (st, m) = stamped();
        let p = Partitions::split(&st);
        assert_eq!(p.m, m);
        assert_eq!(p.a.nrows(), m);
        assert_eq!(p.d.nrows(), p.n);
        assert_eq!(p.q.nrows(), p.n);
        assert_eq!(p.q.ncols(), m);
        assert_eq!(p.r.nrows(), p.n);
        assert_eq!(p.e.nrows(), p.n);
    }

    #[test]
    fn blocks_match_parent_entries() {
        let (st, m) = stamped();
        let p = Partitions::split(&st);
        for i in 0..p.n {
            for j in 0..m {
                assert_eq!(p.q.get(i, j), st.g.get(m + i, j));
                assert_eq!(p.r.get(i, j), st.c.get(m + i, j));
            }
            for j in 0..p.n {
                assert_eq!(p.d.get(i, j), st.g.get(m + i, m + j));
                assert_eq!(p.e.get(i, j), st.c.get(m + i, m + j));
            }
        }
    }

    #[test]
    fn symmetry_of_blocks() {
        let (st, _) = stamped();
        let p = Partitions::split(&st);
        assert!(p.a.is_symmetric(0.0));
        assert!(p.b.is_symmetric(0.0));
        assert!(p.d.is_symmetric(0.0));
        assert!(p.e.is_symmetric(0.0));
    }
}
