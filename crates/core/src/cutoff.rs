//! Cutoff-frequency selection from a user error tolerance.
//!
//! Dropping a pole term `−s²rᵀr/(1+sλ)` leaves the first two moments of
//! `Y(s)` untouched; its relative magnitude error at frequency `f`, for a
//! pole at `f_p = 1/(2πλ)`, follows the first-order high-pass envelope
//! `ε(f) = 1 − 1/√(1 + (f/f_p)²)`. RCFIT therefore chooses the cutoff
//! `f_c` so that this envelope equals the user tolerance at the maximum
//! frequency of interest: `f_c = f_max / √((1−ε)⁻² − 1)`. The paper's
//! example — "a 5 % tolerance requires the cutoff frequency to be 3.04
//! times larger than the maximum frequency" — falls out exactly.

/// Error from an invalid cutoff specification.
#[derive(Clone, Debug, PartialEq)]
pub struct CutoffError {
    /// Description of the invalid parameter.
    pub message: String,
}

impl std::fmt::Display for CutoffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid cutoff specification: {}", self.message)
    }
}

impl std::error::Error for CutoffError {}

/// User-facing accuracy specification: maximum frequency of interest and
/// relative error tolerance, mapped to the pole-dropping cutoff.
///
/// ```
/// use pact::CutoffSpec;
/// let spec = CutoffSpec::new(5e9, 0.05)?; // 5 GHz, 5 %
/// assert!((spec.cutoff_frequency() / 5e9 - 3.04).abs() < 0.01);
/// # Ok::<(), pact::CutoffError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutoffSpec {
    f_max: f64,
    tolerance: f64,
}

impl CutoffSpec {
    /// Creates a specification from a maximum frequency (Hz) and a
    /// relative tolerance in `(0, 1)`.
    ///
    /// # Errors
    ///
    /// [`CutoffError`] for non-positive frequency or tolerance outside
    /// `(0, 1)`.
    pub fn new(f_max: f64, tolerance: f64) -> Result<Self, CutoffError> {
        if !f_max.is_finite() || f_max <= 0.0 {
            return Err(CutoffError {
                message: format!("maximum frequency must be positive, got {f_max}"),
            });
        }
        if !tolerance.is_finite() || tolerance <= 0.0 || tolerance >= 1.0 {
            return Err(CutoffError {
                message: format!("tolerance must be in (0, 1), got {tolerance}"),
            });
        }
        Ok(CutoffSpec { f_max, tolerance })
    }

    /// Builds a specification directly from a cutoff frequency, bypassing
    /// the tolerance mapping (the tolerance reported is the implied error
    /// at `f_max = f_c`).
    ///
    /// # Errors
    ///
    /// [`CutoffError`] for a non-positive cutoff.
    pub fn from_cutoff_frequency(f_c: f64) -> Result<Self, CutoffError> {
        if !f_c.is_finite() || f_c <= 0.0 {
            return Err(CutoffError {
                message: format!("cutoff frequency must be positive, got {f_c}"),
            });
        }
        // Represent as f_max = f_c with the implied tolerance at f_max.
        let tol = 1.0 - 1.0 / 2.0f64.sqrt();
        Ok(CutoffSpec {
            f_max: f_c,
            tolerance: tol,
        })
    }

    /// The maximum frequency of interest in Hz.
    #[inline]
    pub fn f_max(&self) -> f64 {
        self.f_max
    }

    /// The relative error tolerance.
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The ratio `f_c / f_max` implied by the tolerance
    /// (`≈ 3.04` at 5 %).
    pub fn cutoff_ratio(&self) -> f64 {
        let inv = 1.0 / (1.0 - self.tolerance);
        1.0 / (inv * inv - 1.0).sqrt()
    }

    /// The pole-dropping cutoff frequency `f_c` in Hz.
    pub fn cutoff_frequency(&self) -> f64 {
        self.f_max * self.cutoff_ratio()
    }

    /// The eigenvalue cutoff `λ_c = 1/(2π f_c)`: eigenvalues of `E'` at or
    /// above this are retained (their poles lie below `f_c`).
    pub fn lambda_c(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * self.cutoff_frequency())
    }

    /// The worst-case relative error contributed by one dropped pole at
    /// frequency `f`, per the high-pass envelope model.
    pub fn error_at(&self, f: f64) -> f64 {
        let x = f / self.cutoff_frequency();
        1.0 - 1.0 / (1.0 + x * x).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_at_five_percent() {
        let spec = CutoffSpec::new(1e9, 0.05).unwrap();
        assert!(
            (spec.cutoff_ratio() - 3.042).abs() < 0.01,
            "ratio = {}",
            spec.cutoff_ratio()
        );
    }

    #[test]
    fn error_at_fmax_equals_tolerance() {
        for &tol in &[0.01, 0.05, 0.1, 0.3] {
            let spec = CutoffSpec::new(2e9, tol).unwrap();
            assert!(
                (spec.error_at(spec.f_max()) - tol).abs() < 1e-12,
                "tol {tol}"
            );
        }
    }

    #[test]
    fn lambda_c_inverse_relation() {
        let spec = CutoffSpec::new(1e9, 0.05).unwrap();
        let fc = spec.cutoff_frequency();
        assert!((spec.lambda_c() * 2.0 * std::f64::consts::PI * fc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_is_monotone_in_frequency() {
        let spec = CutoffSpec::new(1e9, 0.05).unwrap();
        let mut last = 0.0;
        for k in 1..50 {
            let e = spec.error_at(k as f64 * 1e8);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn tighter_tolerance_pushes_cutoff_up() {
        let loose = CutoffSpec::new(1e9, 0.10).unwrap();
        let tight = CutoffSpec::new(1e9, 0.01).unwrap();
        assert!(tight.cutoff_frequency() > loose.cutoff_frequency());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(CutoffSpec::new(-1.0, 0.05).is_err());
        assert!(CutoffSpec::new(0.0, 0.05).is_err());
        assert!(CutoffSpec::new(1e9, 0.0).is_err());
        assert!(CutoffSpec::new(1e9, 1.0).is_err());
        assert!(CutoffSpec::new(f64::NAN, 0.05).is_err());
        assert!(CutoffSpec::from_cutoff_frequency(0.0).is_err());
    }

    #[test]
    fn from_cutoff_frequency_roundtrip() {
        let spec = CutoffSpec::from_cutoff_frequency(3e9).unwrap();
        assert!((spec.cutoff_frequency() - 3e9).abs() / 3e9 < 1e-9);
    }
}
