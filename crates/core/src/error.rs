//! The unified error type for the whole reduction pipeline.
//!
//! Every failure on the `rcfit` path — parse, flatten, extraction,
//! cutoff validation, factorization, pole analysis, output — surfaces
//! as one [`PactError`] variant carrying enough attribution (node name,
//! element name, line/column) to act on. The taxonomy is documented in
//! DESIGN.md; [`PactError::code`] gives each variant a stable
//! machine-readable identifier that golden tests snapshot against.

use pact_lanczos::LanczosError;
use pact_netlist::{FlattenError, NetworkError, ParseNetlistError, ParseValueError, RcNetwork};
use pact_sparse::EigenError;

use crate::cutoff::CutoffError;
use crate::reduce::ReduceError;

/// Any failure of the PACT pipeline, with attribution.
#[derive(Clone, Debug)]
pub enum PactError {
    /// The SPICE deck did not parse; carries line (and column when
    /// known) information.
    Parse(ParseNetlistError),
    /// A numeric value (e.g. a `--fmax` argument) did not parse.
    Value(ParseValueError),
    /// Subcircuit expansion failed.
    Flatten(FlattenError),
    /// RC extraction rejected the deck (bad element values, no ports, …).
    Network(NetworkError),
    /// The accuracy specification was invalid.
    Cutoff(CutoffError),
    /// The internal conductance block `D` is singular: the named internal
    /// node has no DC path to any port, so the congruence transform (and
    /// the paper's stability theorem, which needs `D ≻ 0`) is undefined.
    /// Sanitization prunes purely-floating nodes beforehand, so reaching
    /// this means a structurally connected but numerically singular node.
    SingularInternalConductance {
        /// Name of the offending internal node.
        node: String,
        /// The non-positive pivot encountered.
        pivot: f64,
    },
    /// The conductance block carried a NaN or infinite value (a poisoned
    /// deck or upstream arithmetic overflow): factorization hit a
    /// non-finite pivot at the named internal node. Reported as its own
    /// variant — unlike a singular pivot, no relief floor can repair it.
    NonFiniteInternalConductance {
        /// Name of the offending internal node.
        node: String,
        /// The non-finite pivot encountered.
        pivot: f64,
    },
    /// A user-supplied multipoint expansion point landed on (or within
    /// relief tolerance of) a pole of the pencil `D + sE`: the shifted
    /// factorization is numerically singular at that point. Attributed
    /// to the internal node owning the vanishing pivot, like the
    /// factorization errors above.
    ExpansionPointAtPole {
        /// The offending expansion point in hertz, as supplied.
        point_hz: f64,
        /// Name of the internal node most associated with the pole.
        node: String,
        /// Smallest pivot modulus divided by the largest.
        pivot: f64,
    },
    /// The Lanczos eigensolver did not converge near the cutoff.
    Lanczos(LanczosError),
    /// The dense eigensolver failed.
    Eigen(EigenError),
    /// Reading or writing a file failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// An invariant the pipeline guarantees by construction was violated
    /// (a bug, not a property of the input).
    Internal {
        /// Description of the violated invariant.
        message: String,
    },
}

impl PactError {
    /// Stable machine-readable identifier for each variant.
    pub fn code(&self) -> &'static str {
        match self {
            PactError::Parse(_) => "parse",
            PactError::Value(_) => "value",
            PactError::Flatten(_) => "flatten",
            PactError::Network(_) => "network",
            PactError::Cutoff(_) => "cutoff",
            PactError::SingularInternalConductance { .. } => "singular_internal_conductance",
            PactError::NonFiniteInternalConductance { .. } => "non_finite_internal_conductance",
            PactError::ExpansionPointAtPole { .. } => "expansion_point_at_pole",
            PactError::Lanczos(_) => "lanczos",
            PactError::Eigen(_) => "eigen",
            PactError::Io { .. } => "io",
            PactError::Internal { .. } => "internal",
        }
    }

    /// Converts a [`ReduceError`] into a [`PactError`], attributing
    /// factorization failures to the node that owns the failed pivot.
    ///
    /// [`pact_sparse::FactorError`] reports the `D`-local row of the bad
    /// pivot; `network` (the same network that was reduced) maps it back
    /// to the global node name.
    pub fn from_reduce(e: ReduceError, network: &RcNetwork) -> PactError {
        match e {
            ReduceError::Factor(pact_sparse::FactorError::NotPositiveDefinite {
                index,
                pivot,
                ..
            }) => {
                let node = network
                    .node_names
                    .get(network.num_ports + index)
                    .cloned()
                    .unwrap_or_else(|| format!("internal#{index}"));
                PactError::SingularInternalConductance { node, pivot }
            }
            ReduceError::Factor(pact_sparse::FactorError::NonFinitePivot {
                index, pivot, ..
            }) => {
                let node = network
                    .node_names
                    .get(network.num_ports + index)
                    .cloned()
                    .unwrap_or_else(|| format!("internal#{index}"));
                PactError::NonFiniteInternalConductance { node, pivot }
            }
            ReduceError::Factor(fe) => PactError::Internal {
                message: format!("conductance block factorization failed: {fe}"),
            },
            ReduceError::ExpansionPointAtPole {
                point_hz,
                index,
                pivot,
            } => {
                let node = network
                    .node_names
                    .get(network.num_ports + index)
                    .cloned()
                    .unwrap_or_else(|| format!("internal#{index}"));
                PactError::ExpansionPointAtPole {
                    point_hz,
                    node,
                    pivot,
                }
            }
            ReduceError::Lanczos(le) => PactError::Lanczos(le),
            ReduceError::Eigen(ee) => PactError::Eigen(ee),
            ReduceError::Network(ne) => PactError::Network(ne),
        }
    }

    /// Wraps an I/O failure with the path it concerned.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> PactError {
        PactError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for PactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PactError::Parse(e) => write!(f, "parse error: {e}"),
            PactError::Value(e) => write!(f, "invalid value: {e}"),
            PactError::Flatten(e) => write!(f, "flatten error: {e}"),
            PactError::Network(e) => write!(f, "extraction error: {e}"),
            PactError::Cutoff(e) => write!(f, "cutoff error: {e}"),
            PactError::SingularInternalConductance { node, pivot } => write!(
                f,
                "internal node `{node}` has no DC path to any port \
                 (singular pivot {pivot:.3e} in the conductance block)"
            ),
            PactError::NonFiniteInternalConductance { node, pivot } => write!(
                f,
                "internal node `{node}` produced a non-finite pivot ({pivot}) \
                 in the conductance block — the deck carries a NaN or \
                 infinite value"
            ),
            PactError::ExpansionPointAtPole {
                point_hz,
                node,
                pivot,
            } => write!(
                f,
                "expansion point {point_hz:.6e} Hz lies on a pole of the pencil \
                 near internal node `{node}` (relative pivot {pivot:.3e}); \
                 choose a point away from the pole, e.g. a positive \
                 (imaginary-axis) frequency"
            ),
            PactError::Lanczos(e) => write!(f, "pole analysis failed: {e}"),
            PactError::Eigen(e) => write!(f, "dense eigendecomposition failed: {e}"),
            PactError::Io { path, message } => write!(f, "{path}: {message}"),
            PactError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for PactError {}

impl From<ParseNetlistError> for PactError {
    fn from(e: ParseNetlistError) -> Self {
        PactError::Parse(e)
    }
}
impl From<ParseValueError> for PactError {
    fn from(e: ParseValueError) -> Self {
        PactError::Value(e)
    }
}
impl From<FlattenError> for PactError {
    fn from(e: FlattenError) -> Self {
        PactError::Flatten(e)
    }
}
impl From<NetworkError> for PactError {
    fn from(e: NetworkError) -> Self {
        PactError::Network(e)
    }
}
impl From<CutoffError> for PactError {
    fn from(e: CutoffError) -> Self {
        PactError::Cutoff(e)
    }
}
impl From<LanczosError> for PactError {
    fn from(e: LanczosError) -> Self {
        PactError::Lanczos(e)
    }
}
impl From<EigenError> for PactError {
    fn from(e: EigenError) -> Self {
        PactError::Eigen(e)
    }
}
