//! Exact multiport admittance of the *unreduced* network (eq. 3):
//!
//! ```text
//! Y(s) = A + sB − (Q + sR)ᵀ (D + sE)⁻¹ (Q + sR)
//! ```
//!
//! evaluated with one sparse complex LU per frequency. This is the
//! reference the reproduction compares every reduced model against
//! (Figure 5's error bars are "5 % relative to the transimpedance of the
//! original network").

use pact_sparse::{Complex64, CscMat, DMat, SparseLu, SparseLuError};

use crate::partition::Partitions;

/// Evaluator for the exact admittance of a partitioned RC network.
#[derive(Clone, Debug)]
pub struct FullAdmittance<'a> {
    parts: &'a Partitions,
}

impl<'a> FullAdmittance<'a> {
    /// Wraps partitioned network matrices.
    pub fn new(parts: &'a Partitions) -> Self {
        FullAdmittance { parts }
    }

    /// Evaluates `Y(j·2πf)` exactly (an `m×m` complex matrix).
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if `(D + sE)` is singular at this frequency
    /// (cannot happen for a well-posed RC network at real frequencies).
    pub fn y_at(&self, f: f64) -> Result<DMat<Complex64>, SparseLuError> {
        let p = self.parts;
        let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * f);
        let m = p.m;
        let n = p.n;
        let mut y = DMat::zeros(m, m);
        for i in 0..m {
            for (j, v) in p.a.row_iter(i) {
                y[(i, j)] += Complex64::from_real(v);
            }
            for (j, v) in p.b.row_iter(i) {
                y[(i, j)] += s.scale(v);
            }
        }
        if n == 0 {
            return Ok(y);
        }
        // Assemble (D + sE) in complex CSC.
        let mut trips: Vec<(usize, usize, Complex64)> = Vec::with_capacity(p.d.nnz() + p.e.nnz());
        for i in 0..n {
            for (j, v) in p.d.row_iter(i) {
                trips.push((i, j, Complex64::from_real(v)));
            }
            for (j, v) in p.e.row_iter(i) {
                trips.push((i, j, s.scale(v)));
            }
        }
        let ds = CscMat::from_triplets(n, n, &trips);
        let lu = SparseLu::factor(&ds)?;
        // Column j of (Q + sR).
        let qt = p.q.transpose();
        let rt = p.r.transpose();
        let mut rhs = vec![Complex64::ZERO; n];
        for j in 0..m {
            rhs.iter_mut().for_each(|v| *v = Complex64::ZERO);
            for (i, v) in qt.row_iter(j) {
                rhs[i] += Complex64::from_real(v);
            }
            for (i, v) in rt.row_iter(j) {
                rhs[i] += s.scale(v);
            }
            let x = lu.solve(&rhs);
            // y(:,j) -= (Q + sR)ᵀ x
            for i in 0..m {
                let mut acc = Complex64::ZERO;
                for (row, v) in qt.row_iter(i) {
                    acc += x[row].scale(v);
                }
                for (row, v) in rt.row_iter(i) {
                    acc += (s * x[row]).scale(v);
                }
                y[(i, j)] -= acc;
            }
        }
        Ok(y)
    }

    /// The `(i, j)` entry of the impedance matrix `Z(jω) = Y(jω)⁻¹` —
    /// the transimpedance plotted in the paper's Figure 5.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] propagated from `y_at`, or if `Y` itself is
    /// singular.
    pub fn transimpedance(&self, f: f64, i: usize, j: usize) -> Result<Complex64, SparseLuError> {
        let y = self.y_at(f)?;
        transimpedance_of(&y, i, j)
    }
}

/// `Z_ij` of a given admittance matrix (shared by full and reduced paths).
///
/// # Errors
///
/// Returns [`SparseLuError`] when `Y` is singular.
pub fn transimpedance_of(
    y: &DMat<Complex64>,
    i: usize,
    j: usize,
) -> Result<Complex64, SparseLuError> {
    let lu = pact_sparse::DenseLu::factor(y).map_err(|e| SparseLuError { column: e.column })?;
    let m = y.nrows();
    let mut e = vec![Complex64::ZERO; m];
    e[j] = Complex64::ONE;
    let z = lu.solve(&e);
    Ok(z[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::{extract_rc, parse};

    /// Two-port Π network: R between ports, C to ground at each port via
    /// one internal node each — analytically checkable at DC.
    fn simple() -> Partitions {
        let nl = parse(
            "\
* pi
V1 p1 0 1
V2 p2 0 1
R1 p1 mid 50
R2 mid p2 50
C1 mid 0 2p
.end
",
        )
        .unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        Partitions::split(&ex.network.stamp())
    }

    #[test]
    fn dc_matches_resistive_reduction() {
        let p = simple();
        let fa = FullAdmittance::new(&p);
        let y = fa.y_at(0.0).unwrap();
        // DC: series 100Ω between ports; Y11 = 1/100, Y12 = −1/100.
        assert!((y[(0, 0)].re - 0.01).abs() < 1e-12);
        assert!((y[(0, 1)].re + 0.01).abs() < 1e-12);
        assert!(y[(0, 0)].im.abs() < 1e-18);
    }

    #[test]
    fn high_frequency_cap_shunts() {
        let p = simple();
        let fa = FullAdmittance::new(&p);
        // At very high f the 2p cap shorts `mid` to ground: each port sees
        // its 50Ω to ground, no transfer.
        let y = fa.y_at(1e15).unwrap();
        assert!((y[(0, 0)].re - 0.02).abs() < 1e-4);
        assert!(y[(0, 1)].abs() < 1e-4);
    }

    #[test]
    fn symmetric_reciprocal_network() {
        let p = simple();
        let fa = FullAdmittance::new(&p);
        let y = fa.y_at(3e9).unwrap();
        assert!((y[(0, 1)] - y[(1, 0)]).abs() < 1e-15);
    }

    #[test]
    fn transimpedance_inverse_consistency() {
        let p = simple();
        let fa = FullAdmittance::new(&p);
        let f = 1e9;
        let y = fa.y_at(f).unwrap();
        let z01 = fa.transimpedance(f, 0, 1).unwrap();
        // Y * Z = I  ⇒  row 0 of Y times column 1 of Z equals 0, checked
        // implicitly by recomputing Z from Y.
        let z01b = transimpedance_of(&y, 0, 1).unwrap();
        assert!((z01 - z01b).abs() < 1e-12 * z01.abs());
    }

    #[test]
    fn no_internal_nodes_case() {
        let nl = parse("* d\nV1 a 0 1\nV2 b 0 1\nR1 a b 100\n.end\n").unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        let p = Partitions::split(&ex.network.stamp());
        assert_eq!(p.n, 0);
        let fa = FullAdmittance::new(&p);
        let y = fa.y_at(1e9).unwrap();
        assert!((y[(0, 0)].re - 0.01).abs() < 1e-15);
    }
}
