//! Exact multiport admittance of the *unreduced* network (eq. 3):
//!
//! ```text
//! Y(s) = A + sB − (Q + sR)ᵀ (D + sE)⁻¹ (Q + sR)
//! ```
//!
//! This is the reference the reproduction compares every reduced model
//! against (Figure 5's error bars are "5 % relative to the
//! transimpedance of the original network").
//!
//! ## One symbolic, many numerics
//!
//! The sparsity structure of `(D + sE)` is fixed for the whole sweep —
//! only the values depend on `s` — so [`YEvaluator`] merges `D` and `E`
//! into one [`CscPencil`] union structure up front, runs the sparse-LU
//! symbolic analysis ([`pact_sparse::SymbolicLu`]) exactly once, and
//! serves every subsequent frequency with a numeric-only
//! refactorization (falling back to a fresh factorization only if
//! partial pivoting rejects the cached pivots, which cannot happen for
//! well-posed RC pencils). The `m` port right-hand sides are solved as
//! one blocked multi-RHS batch, and [`YEvaluator::y_grid`] fans the
//! frequency grid across [`ParCtx`] workers with results in grid order
//! — bit-identical at every thread count.

use std::sync::OnceLock;

use pact_sparse::{
    Complex64, CscMat, CscPencil, CsrMat, DMat, DenseLu, ParCtx, SparseLu, SparseLuError,
    SymbolicLu,
};

use crate::partition::Partitions;

/// Factorization-effort counters from a sweep — feed these into the
/// telemetry layer's `factorizations` / `refactorizations` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepCounts {
    /// Fresh full factorizations (symbolic + numeric).
    pub factorizations: u64,
    /// Numeric-only refactorizations that reused the cached analysis.
    pub refactorizations: u64,
}

impl SweepCounts {
    /// Component-wise sum.
    pub fn absorb(&mut self, other: SweepCounts) {
        self.factorizations += other.factorizations;
        self.refactorizations += other.refactorizations;
    }
}

/// Per-worker numeric workspace for one frequency point: the complex
/// pencil matrix, a prepared refactorization target, and the blocked
/// right-hand-side buffers. Built once per worker, reused across its
/// points.
struct PointScratch {
    mat: CscMat<Complex64>,
    prep: SparseLu<Complex64>,
    block: Vec<Complex64>,
    tmp: Vec<Complex64>,
}

/// Evaluator for the exact admittance of a partitioned RC network, with
/// one-time symbolic analysis shared across all frequencies.
#[derive(Clone, Debug)]
pub struct YEvaluator<'a> {
    parts: &'a Partitions,
    qt: CsrMat,
    rt: CsrMat,
    pencil: Option<CscPencil>,
    symbolic: OnceLock<SymbolicLu>,
}

impl<'a> YEvaluator<'a> {
    /// Wraps partitioned network matrices; builds the `(D, E)` union
    /// pencil once.
    pub fn new(parts: &'a Partitions) -> Self {
        let n = parts.n;
        let pencil = (n > 0).then(|| {
            let mut gtrips = Vec::with_capacity(parts.d.nnz());
            let mut ctrips = Vec::with_capacity(parts.e.nnz());
            for i in 0..n {
                for (j, v) in parts.d.row_iter(i) {
                    gtrips.push((i, j, v));
                }
                for (j, v) in parts.e.row_iter(i) {
                    ctrips.push((i, j, v));
                }
            }
            CscPencil::from_triplets(n, &gtrips, &ctrips)
        });
        YEvaluator {
            parts,
            qt: parts.q.transpose(),
            rt: parts.r.transpose(),
            pencil,
            symbolic: OnceLock::new(),
        }
    }

    /// The port-block contribution `A + sB` (dense `m×m`).
    fn y_base(&self, s: Complex64) -> DMat<Complex64> {
        let p = self.parts;
        let mut y = DMat::zeros(p.m, p.m);
        for i in 0..p.m {
            for (j, v) in p.a.row_iter(i) {
                y[(i, j)] += Complex64::from_real(v);
            }
            for (j, v) in p.b.row_iter(i) {
                y[(i, j)] += s.scale(v);
            }
        }
        y
    }

    /// The cached symbolic analysis, creating it (one fresh full
    /// factorization at frequency `f`) on first use.
    fn symbolic_at(&self, f: f64) -> Result<(&SymbolicLu, bool), SparseLuError> {
        let pencil = self.pencil.as_ref().expect("no internal nodes");
        if let Some(sym) = self.symbolic.get() {
            return Ok((sym, false));
        }
        let omega = 2.0 * std::f64::consts::PI * f;
        let (_, sym) = SparseLu::factor_analyzed(&pencil.eval(omega))?;
        // A concurrent initializer may have won the race; either analysis
        // is valid (same structure), so just use whichever landed.
        let fresh = self.symbolic.set(sym).is_ok();
        Ok((self.symbolic.get().expect("just initialized"), fresh))
    }

    fn scratch(&self, sym: &SymbolicLu) -> PointScratch {
        let pencil = self.pencil.as_ref().expect("no internal nodes");
        PointScratch {
            mat: pencil.eval(0.0),
            prep: sym.prepared(),
            block: vec![Complex64::ZERO; self.parts.n * self.parts.m],
            tmp: Vec::new(),
        }
    }

    /// Evaluates one frequency point into `scr`, returning the admittance
    /// and whether the cached analysis served it (`false` = pivot
    /// fallback to a fresh factorization).
    fn y_point(
        &self,
        sym: &SymbolicLu,
        f: f64,
        scr: &mut PointScratch,
    ) -> Result<(DMat<Complex64>, bool), SparseLuError> {
        let p = self.parts;
        let omega = 2.0 * std::f64::consts::PI * f;
        let s = Complex64::new(0.0, omega);
        let mut y = self.y_base(s);
        let (n, m) = (p.n, p.m);
        let pencil = self.pencil.as_ref().expect("no internal nodes");
        pencil.eval_into(omega, &mut scr.mat);
        let refactored = sym.refactor_into(&scr.mat, &mut scr.prep).is_ok();
        let fallback;
        let lu: &SparseLu<Complex64> = if refactored {
            &scr.prep
        } else {
            fallback = SparseLu::factor(&scr.mat)?;
            &fallback
        };
        // Columns of (Q + sR), solved as one blocked batch.
        for j in 0..m {
            let col = &mut scr.block[j * n..(j + 1) * n];
            col.iter_mut().for_each(|v| *v = Complex64::ZERO);
            for (i, v) in self.qt.row_iter(j) {
                col[i] += Complex64::from_real(v);
            }
            for (i, v) in self.rt.row_iter(j) {
                col[i] += s.scale(v);
            }
        }
        lu.solve_block_in_place(&mut scr.block, &mut scr.tmp);
        // y(:,j) -= (Q + sR)ᵀ x_j
        for j in 0..m {
            let x = &scr.block[j * n..(j + 1) * n];
            for i in 0..m {
                let mut acc = Complex64::ZERO;
                for (row, v) in self.qt.row_iter(i) {
                    acc += x[row].scale(v);
                }
                for (row, v) in self.rt.row_iter(i) {
                    acc += (s * x[row]).scale(v);
                }
                y[(i, j)] -= acc;
            }
        }
        Ok((y, refactored))
    }

    /// Evaluates `Y(j·2πf)` exactly (an `m×m` complex matrix), reusing
    /// the cached symbolic analysis when one exists.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if `(D + sE)` is singular at this frequency
    /// (cannot happen for a well-posed RC network at real frequencies).
    pub fn y_at(&self, f: f64) -> Result<DMat<Complex64>, SparseLuError> {
        if self.parts.n == 0 {
            let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * f);
            return Ok(self.y_base(s));
        }
        let (sym, _) = self.symbolic_at(f)?;
        let mut scr = self.scratch(sym);
        Ok(self.y_point(sym, f, &mut scr)?.0)
    }

    /// Evaluates the admittance over a whole frequency grid, fanning the
    /// points across `ctx`'s workers. One symbolic analysis (at
    /// `freqs[0]`) serves every point; results come back **in grid
    /// order** and are bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if the pencil is singular at some frequency.
    pub fn y_grid(
        &self,
        freqs: &[f64],
        ctx: ParCtx,
    ) -> Result<(Vec<DMat<Complex64>>, SweepCounts), SparseLuError> {
        let mut counts = SweepCounts::default();
        if freqs.is_empty() {
            return Ok((Vec::new(), counts));
        }
        if self.parts.n == 0 {
            let ys = freqs
                .iter()
                .map(|&f| {
                    let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * f);
                    self.y_base(s)
                })
                .collect();
            return Ok((ys, counts));
        }
        let (sym, fresh) = self.symbolic_at(freqs[0])?;
        if fresh {
            counts.factorizations += 1;
        }
        let results = ctx.map_items(
            freqs.len(),
            || self.scratch(sym),
            |scr, k| self.y_point(sym, freqs[k], scr),
        );
        let mut ys = Vec::with_capacity(freqs.len());
        for r in results {
            let (y, refactored) = r?;
            if refactored {
                counts.refactorizations += 1;
            } else {
                counts.factorizations += 1;
            }
            ys.push(y);
        }
        Ok((ys, counts))
    }
}

/// Cached impedance view of one admittance matrix: dense-LU factored
/// once, with each requested column `Z(:, j) = Y⁻¹ e_j` solved lazily
/// and memoized — so a loop over port pairs at a fixed frequency pays
/// one `O(m³)` factorization and at most `m` triangular solves instead
/// of a fresh factorization per pair.
#[derive(Clone, Debug)]
pub struct PortImpedance {
    lu: DenseLu<Complex64>,
    m: usize,
    cols: Vec<Option<Vec<Complex64>>>,
}

impl PortImpedance {
    /// Factors `y` once.
    ///
    /// # Errors
    ///
    /// Returns [`SparseLuError`] when `Y` is singular.
    pub fn new(y: &DMat<Complex64>) -> Result<Self, SparseLuError> {
        let lu = DenseLu::factor(y).map_err(|e| SparseLuError { column: e.column })?;
        let m = y.nrows();
        Ok(PortImpedance {
            lu,
            m,
            cols: vec![None; m],
        })
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.m
    }

    /// `Z_ij`, solving (and caching) column `j` on first use.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn z(&mut self, i: usize, j: usize) -> Complex64 {
        assert!(i < self.m && j < self.m, "port index out of range");
        let col = self.cols[j].get_or_insert_with(|| {
            let mut e = vec![Complex64::ZERO; self.m];
            e[j] = Complex64::ONE;
            self.lu.solve(&e)
        });
        col[i]
    }
}

/// Evaluator for the exact admittance of a partitioned RC network.
///
/// Thin compatibility wrapper over [`YEvaluator`]; prefer the latter
/// for sweep workloads ([`YEvaluator::y_grid`] parallelizes the grid).
#[derive(Clone, Debug)]
pub struct FullAdmittance<'a> {
    eval: YEvaluator<'a>,
}

impl<'a> FullAdmittance<'a> {
    /// Wraps partitioned network matrices.
    pub fn new(parts: &'a Partitions) -> Self {
        FullAdmittance {
            eval: YEvaluator::new(parts),
        }
    }

    /// Evaluates `Y(j·2πf)` exactly (an `m×m` complex matrix).
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if `(D + sE)` is singular at this frequency
    /// (cannot happen for a well-posed RC network at real frequencies).
    pub fn y_at(&self, f: f64) -> Result<DMat<Complex64>, SparseLuError> {
        self.eval.y_at(f)
    }

    /// All port-pair impedances at frequency `f`, factored once — use
    /// this instead of repeated [`FullAdmittance::transimpedance`] calls
    /// when querying several pairs.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] propagated from `y_at`, or if `Y` is singular.
    pub fn impedance_at(&self, f: f64) -> Result<PortImpedance, SparseLuError> {
        PortImpedance::new(&self.y_at(f)?)
    }

    /// The `(i, j)` entry of the impedance matrix `Z(jω) = Y(jω)⁻¹` —
    /// the transimpedance plotted in the paper's Figure 5.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] propagated from `y_at`, or if `Y` itself is
    /// singular.
    pub fn transimpedance(&self, f: f64, i: usize, j: usize) -> Result<Complex64, SparseLuError> {
        Ok(self.impedance_at(f)?.z(i, j))
    }
}

/// `Z_ij` of a given admittance matrix (shared by full and reduced paths).
///
/// # Errors
///
/// Returns [`SparseLuError`] when `Y` is singular.
pub fn transimpedance_of(
    y: &DMat<Complex64>,
    i: usize,
    j: usize,
) -> Result<Complex64, SparseLuError> {
    let mut z = PortImpedance::new(y)?;
    Ok(z.z(i, j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::{extract_rc, parse};

    /// Two-port Π network: R between ports, C to ground at each port via
    /// one internal node each — analytically checkable at DC.
    fn simple() -> Partitions {
        let nl = parse(
            "\
* pi
V1 p1 0 1
V2 p2 0 1
R1 p1 mid 50
R2 mid p2 50
C1 mid 0 2p
.end
",
        )
        .unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        Partitions::split(&ex.network.stamp())
    }

    #[test]
    fn dc_matches_resistive_reduction() {
        let p = simple();
        let fa = FullAdmittance::new(&p);
        let y = fa.y_at(0.0).unwrap();
        // DC: series 100Ω between ports; Y11 = 1/100, Y12 = −1/100.
        assert!((y[(0, 0)].re - 0.01).abs() < 1e-12);
        assert!((y[(0, 1)].re + 0.01).abs() < 1e-12);
        assert!(y[(0, 0)].im.abs() < 1e-18);
    }

    #[test]
    fn high_frequency_cap_shunts() {
        let p = simple();
        let fa = FullAdmittance::new(&p);
        // At very high f the 2p cap shorts `mid` to ground: each port sees
        // its 50Ω to ground, no transfer.
        let y = fa.y_at(1e15).unwrap();
        assert!((y[(0, 0)].re - 0.02).abs() < 1e-4);
        assert!(y[(0, 1)].abs() < 1e-4);
    }

    #[test]
    fn symmetric_reciprocal_network() {
        let p = simple();
        let fa = FullAdmittance::new(&p);
        let y = fa.y_at(3e9).unwrap();
        assert!((y[(0, 1)] - y[(1, 0)]).abs() < 1e-15);
    }

    #[test]
    fn transimpedance_inverse_consistency() {
        let p = simple();
        let fa = FullAdmittance::new(&p);
        let f = 1e9;
        let y = fa.y_at(f).unwrap();
        let z01 = fa.transimpedance(f, 0, 1).unwrap();
        // Y * Z = I  ⇒  row 0 of Y times column 1 of Z equals 0, checked
        // implicitly by recomputing Z from Y.
        let z01b = transimpedance_of(&y, 0, 1).unwrap();
        assert!((z01 - z01b).abs() < 1e-12 * z01.abs());
    }

    #[test]
    fn no_internal_nodes_case() {
        let nl = parse("* d\nV1 a 0 1\nV2 b 0 1\nR1 a b 100\n.end\n").unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        let p = Partitions::split(&ex.network.stamp());
        assert_eq!(p.n, 0);
        let fa = FullAdmittance::new(&p);
        let y = fa.y_at(1e9).unwrap();
        assert!((y[(0, 0)].re - 0.01).abs() < 1e-15);
        // The grid path degenerates gracefully too.
        let ev = YEvaluator::new(&p);
        let (ys, counts) = ev.y_grid(&[1e8, 1e9], ParCtx::serial()).unwrap();
        assert_eq!(ys.len(), 2);
        assert_eq!(counts, SweepCounts::default());
    }

    #[test]
    fn grid_matches_pointwise_bitwise() {
        let p = simple();
        let freqs: Vec<f64> = (0..12).map(|k| 1e6 * 2f64.powi(k)).collect();
        let ev = YEvaluator::new(&p);
        let (ys, counts) = ev.y_grid(&freqs, ParCtx::new(Some(4))).unwrap();
        assert_eq!(counts.factorizations, 1, "one symbolic capture");
        assert_eq!(counts.refactorizations, freqs.len() as u64);
        let ev2 = YEvaluator::new(&p);
        for (k, &f) in freqs.iter().enumerate() {
            let y = ev2.y_at(f).unwrap();
            for i in 0..p.m {
                for j in 0..p.m {
                    let (a, b) = (ys[k][(i, j)], y[(i, j)]);
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "grid vs pointwise differ at f={f} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn port_impedance_caches_columns() {
        let p = simple();
        let fa = FullAdmittance::new(&p);
        let mut z = fa.impedance_at(2e9).unwrap();
        assert_eq!(z.num_ports(), 2);
        let z01 = z.z(0, 1);
        let z01_again = z.z(0, 1);
        assert_eq!(z01.re.to_bits(), z01_again.re.to_bits());
        let direct = fa.transimpedance(2e9, 0, 1).unwrap();
        assert!((z01 - direct).abs() <= 1e-15 * direct.abs());
    }
}
