//! Bounded LRU cache machinery.
//!
//! One small, generic recency-ordered store backs every bounded cache in
//! the serving stack: the session's symbolic-analysis cache
//! ([`crate::ReductionSession`], key = pattern fingerprint) and the
//! `rcfitd` daemon's per-worker pool of warm sessions (key = canonical
//! option string). Keeping them on the same machinery means eviction
//! semantics — promote on hit, replace on key collision, evict the least
//! recently used entry under capacity pressure — are tested once and
//! shared.
//!
//! Entries carry a monotonically increasing *insertion stamp* (`seq`):
//! promotion reorders the recency list but never restamps, so a consumer
//! can snapshot a cache, hand clones to workers, and later collect
//! exactly the entries each worker learned via [`LruCache::entries_since`]
//! (the hierarchical reducer's leaf fan-out does this to keep its
//! counters independent of worker assignment).

/// One cached entry: key, insertion stamp, value.
#[derive(Clone, Debug)]
struct Entry<K, V> {
    key: K,
    seq: u64,
    value: V,
}

/// A bounded least-recently-used cache.
///
/// Recency order is maintained in a `Vec` (index 0 = least recently
/// used, back = most recently used): the caches this serves are small
/// (tens of entries) and hit-dominated, so a linear key scan beats
/// pointer-chasing structures and keeps the type dependency-free.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    next_seq: u64,
    evictions: u64,
    entries: Vec<Entry<K, V>>,
}

impl<K: PartialEq, V> LruCache<K, V> {
    /// An empty cache holding at most `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (a cache that can hold nothing would turn
    /// every insert into an eviction and hide bugs as slow misses).
    pub fn new(cap: usize) -> LruCache<K, V> {
        assert!(cap > 0, "LruCache capacity must be positive");
        LruCache {
            cap,
            next_seq: 0,
            evictions: 0,
            entries: Vec::new(),
        }
    }

    /// Maximum number of entries the cache holds.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted by capacity pressure since construction
    /// (replacements on key collision are not counted).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The stamp the next insertion will receive. Snapshot this before
    /// handing clones to workers; [`LruCache::entries_since`] with the
    /// snapshot returns what a clone learned afterwards.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Looks up `key`, promoting the entry to most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.get_if(key, |_| true)
    }

    /// Looks up `key` and verifies the stored value with `verify` before
    /// trusting it. A verification failure returns `None` *without*
    /// promoting the entry — the caller falls through to a fresh
    /// computation, and the stale entry ages out or is replaced by the
    /// colliding insert.
    ///
    /// This is the symbolic cache's collision guard: the 64-bit pattern
    /// fingerprint is the key, and `verify` is the exact
    /// `SymbolicCholesky::matches` pattern comparison, so an FNV-1a
    /// collision can never hand back the wrong analysis.
    pub fn get_if(&mut self, key: &K, verify: impl FnOnce(&V) -> bool) -> Option<&V> {
        let idx = self.entries.iter().position(|e| &e.key == key)?;
        if !verify(&self.entries[idx].value) {
            return None;
        }
        let entry = self.entries.remove(idx);
        self.entries.push(entry);
        self.entries.last().map(|e| &e.value)
    }

    /// Mutable lookup, promoting the entry to most-recently-used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = self.entries.iter().position(|e| &e.key == key)?;
        let entry = self.entries.remove(idx);
        self.entries.push(entry);
        self.entries.last_mut().map(|e| &mut e.value)
    }

    /// Looks up `key` without touching recency order.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries
            .iter()
            .find(|e| &e.key == key)
            .map(|e| &e.value)
    }

    /// Inserts `key → value` as the most-recently-used entry and returns
    /// whatever it displaced: the previous value under the same key
    /// (newest wins — this is what lets a fingerprint collision correct
    /// itself) or the least-recently-used entry when at capacity.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(idx) = self.entries.iter().position(|e| e.key == key) {
            let old = self.entries.remove(idx);
            self.entries.push(Entry { key, seq, value });
            return Some((old.key, old.value));
        }
        let evicted = if self.entries.len() == self.cap {
            self.evictions += 1;
            let lru = self.entries.remove(0);
            Some((lru.key, lru.value))
        } else {
            None
        };
        self.entries.push(Entry { key, seq, value });
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.entries.iter().position(|e| &e.key == key)?;
        Some(self.entries.remove(idx).value)
    }

    /// Keys in recency order, least recently used first.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|e| &e.key)
    }

    /// `(key, value)` pairs in recency order, least recently used first.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|e| (&e.key, &e.value))
    }
}

impl<K: PartialEq + Clone, V: Clone> LruCache<K, V> {
    /// Entries inserted at stamp `seq` or later — what a clone of this
    /// cache learned after the stamp was taken with
    /// [`LruCache::next_seq`]. Promotions keep their original stamp, so
    /// merely *using* snapshot entries never re-reports them.
    pub fn entries_since(&self, seq: u64) -> Vec<(K, V)> {
        self.entries
            .iter()
            .filter(|e| e.seq >= seq)
            .map(|e| (e.key.clone(), e.value.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_lru_not_fifo() {
        let mut c: LruCache<u32, &str> = LruCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        // Touch 1 so 2 becomes the least recently used.
        assert_eq!(c.get(&1), Some(&"a"));
        let evicted = c.insert(4, "d");
        assert_eq!(evicted, Some((2, "b")), "LRU entry 2 must go, not FIFO 1");
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.keys().copied().collect::<Vec<_>>(), vec![3, 1, 4]);
    }

    #[test]
    fn insert_replaces_same_key_without_eviction() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        let displaced = c.insert(1, "a2");
        assert_eq!(displaced, Some((1, "a")), "old value is handed back");
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0, "replacement is not an eviction");
        assert_eq!(c.peek(&1), Some(&"a2"));
        // The replacement is now most-recently-used.
        assert_eq!(c.keys().copied().collect::<Vec<_>>(), vec![2, 1]);
    }

    #[test]
    fn failed_verification_neither_returns_nor_promotes() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get_if(&1, |_| false), None);
        // 1 stays least-recently-used, so it is the eviction victim.
        assert_eq!(c.insert(3, "c"), Some((1, "a")));
    }

    #[test]
    fn entries_since_reports_only_new_insertions() {
        let mut c: LruCache<u32, &str> = LruCache::new(4);
        c.insert(1, "a");
        c.insert(2, "b");
        let base = c.next_seq();
        // Promotions of old entries must not be re-reported as new.
        assert!(c.get(&1).is_some());
        c.insert(3, "c");
        let new = c.entries_since(base);
        assert_eq!(new, vec![(3, "c")]);
    }

    #[test]
    fn remove_and_peek_do_not_disturb_order() {
        let mut c: LruCache<u32, &str> = LruCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        assert_eq!(c.peek(&1), Some(&"a"));
        assert_eq!(c.insert(4, "d"), Some((1, "a")), "peek must not promote");
        assert_eq!(c.remove(&3), Some("c"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.remove(&3), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, ()>::new(0);
    }
}
