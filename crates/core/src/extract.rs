//! Embedded-parasitic extraction: automatic RC-subnetwork reduction for
//! mixed decks, plus the long-chain collapse pre-pass.
//!
//! Real extracted decks are not pure RC networks — the parasitics are
//! *embedded* among drivers, receivers, inductors and diodes. This
//! module runs the whole RCFIT flow on such a deck end-to-end:
//!
//! 1. flatten the deck and pull every resistor/capacitor into an
//!    [`RcNetwork`] ([`pact_netlist::extract_rc`]), so each connected
//!    component of the RC graph is a maximal RC-only subnetwork whose
//!    boundary nodes (the paper's port rule: any node also touching a
//!    non-RC device) become ports;
//! 2. optionally collapse long degree-2 RC chains
//!    ([`collapse_chains`]) — extracted interconnect is dominated by
//!    thousands-of-segments series chains that PACT would otherwise
//!    factor at full size;
//! 3. reduce every ported component through a [`ReductionSession`]
//!    (flat, hierarchical, or multipoint — whatever the session's
//!    options select);
//! 4. re-stitch the reduced realizations back into the deck
//!    ([`pact_netlist::splice_reduced`]), leaving every non-RC device,
//!    model and analysis card untouched, so the simulator runs the
//!    mixed deck with the parasitics replaced by their reduced
//!    equivalents.
//!
//! Decks with no reducible parasitics (no RC elements at all, or RC
//! elements that never touch a non-RC device) pass through unchanged at
//! zero cost rather than erroring.
//!
//! ## Chain collapse
//!
//! A degree-2 interior node — exactly two resistor terminals, shunt
//! capacitance to ground only — carries no branching information: a run
//! of `k` such nodes is a discretized RC line. Purely resistive runs
//! collapse *exactly* (series resistances add). Capacitive runs are
//! re-segmented onto a coarser uniform-in-resistance grid of `m`
//! segments, with `m` chosen so the rewrite's in-band admittance error
//! stays below `tol` (see [`ChainCollapseSpec`]; `τ = R_chain·C_chain`),
//! and each original shunt capacitor is split between its two
//! neighboring grid nodes linearly in resistive distance. That
//! preserves the chain's total resistance and capacitance exactly —
//! the port-visible DC admittance is untouched — and bounds the
//! in-band error by `tol`. Both
//! rewrites are pure functions of the network, so the pass is
//! deterministic and the collapsed network reduces bit-identically
//! across runs.

use pact_netlist::{extract_rc, splice_reduced, Branch, Netlist, NetworkError, RcNetwork};

use crate::error::PactError;
use crate::reduce::ComponentReduction;
use crate::sanitize::sanitize_network;
use crate::session::ReductionSession;
use crate::telemetry::Telemetry;

/// Accuracy specification for [`collapse_chains`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChainCollapseSpec {
    /// Highest frequency (Hz) at which the collapsed chain must match
    /// the original.
    pub f_max: f64,
    /// Relative in-band admittance error budget (e.g. `1e-6`).
    pub tol: f64,
}

impl ChainCollapseSpec {
    /// A spec with the given band edge and error budget.
    ///
    /// # Errors
    ///
    /// Returns [`PactError::Internal`] when either value is non-positive
    /// or non-finite (the segment-count rule below would divide by
    /// zero or produce a non-finite count).
    pub fn new(f_max: f64, tol: f64) -> Result<ChainCollapseSpec, PactError> {
        if !(f_max > 0.0 && f_max.is_finite() && tol > 0.0 && tol.is_finite()) {
            return Err(PactError::Internal {
                message: format!(
                    "chain collapse spec requires positive finite f_max and tol, \
                     got f_max={f_max}, tol={tol}"
                ),
            });
        }
        Ok(ChainCollapseSpec { f_max, tol })
    }

    /// Segments needed to represent a chain with time constant `tau`
    /// within the spec.
    ///
    /// Two error terms, both `∝ 1/m²`: splitting each shunt capacitor
    /// between its neighboring grid nodes linearly in resistive
    /// distance perturbs the port-visible first admittance moment
    /// (whose per-capacitor weight is *quadratic* in position) by
    /// `≈ ω·τ/(4m²)`, and the coarser lumped line itself carries the
    /// classic `(ω·τ)²/(12m²)` discretization term. Budgeting both with
    /// a 2× margin on the first gives
    /// `m = ⌈√(ω·τ·(6 + ω·τ) / (12·tol))⌉`, at least 1.
    fn segments_for(&self, tau: f64) -> usize {
        let wt = 2.0 * std::f64::consts::PI * self.f_max * tau;
        let m = (wt * (6.0 + wt) / (12.0 * self.tol)).sqrt().ceil();
        if m.is_finite() && m >= 1.0 {
            m as usize
        } else {
            1
        }
    }
}

impl Default for ChainCollapseSpec {
    /// 1 GHz band edge, `1e-6` error budget.
    fn default() -> ChainCollapseSpec {
        ChainCollapseSpec {
            f_max: 1e9,
            tol: 1e-6,
        }
    }
}

/// Result of [`collapse_chains`].
#[derive(Clone, Debug)]
pub struct ChainCollapse {
    /// The rewritten network (ports-first order preserved; ports are
    /// never collapsed).
    pub network: RcNetwork,
    /// Chains actually rewritten (chains already at or below their
    /// target segment count are left untouched and not counted).
    pub chains_collapsed: u64,
    /// Net interior nodes removed across all collapsed chains.
    pub nodes_eliminated: u64,
}

/// One maximal degree-2 run found by the chain walk: the interior nodes
/// in order, the resistor branch indices along the path (one more than
/// the interior nodes), and the two anchor terminals (`None` = ground).
struct ChainRun {
    interior: Vec<usize>,
    resistors: Vec<usize>,
    anchor_a: Option<usize>,
    anchor_b: Option<usize>,
}

/// Collapses maximal runs of degree-2 interior nodes (see the module
/// docs for the eligibility rule and the re-segmentation scheme).
///
/// Ports, nodes with node-to-node coupling capacitors, and branching
/// nodes are never touched; chains whose accuracy-mandated segment
/// count is not smaller than their current one are kept as-is.
pub fn collapse_chains(net: &RcNetwork, spec: &ChainCollapseSpec) -> ChainCollapse {
    let n = net.num_nodes();

    // Per-node resistor adjacency and shunt-capacitance bookkeeping.
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (bi, r) in net.resistors.iter().enumerate() {
        if r.a == r.b {
            continue; // self-loop or ground-to-ground: stamps nothing
        }
        if let Some(i) = r.a {
            radj[i].push(bi);
        }
        if let Some(i) = r.b {
            radj[i].push(bi);
        }
    }
    let mut cgnd = vec![0.0f64; n]; // summed shunt (to-ground) capacitance
    let mut coupled = vec![false; n]; // touches a node-to-node capacitor
    for c in &net.capacitors {
        match (c.a, c.b) {
            (Some(i), None) | (None, Some(i)) => cgnd[i] += c.value,
            (Some(i), Some(j)) if i != j => {
                coupled[i] = true;
                coupled[j] = true;
            }
            _ => {}
        }
    }

    let eligible = |i: usize| -> bool { i >= net.num_ports && radj[i].len() == 2 && !coupled[i] };

    // Walk maximal runs of eligible nodes.
    let mut visited = vec![false; n];
    let mut runs: Vec<ChainRun> = Vec::new();
    let other_end = |bi: usize, from: usize| -> Option<usize> {
        let r = &net.resistors[bi];
        if r.a == Some(from) {
            r.b
        } else {
            r.a
        }
    };
    for start in net.num_ports..n {
        if visited[start] || !eligible(start) {
            continue;
        }
        // Extend from `start` in both directions to the anchors.
        let mut interior = vec![start];
        let mut resistors = Vec::new();
        visited[start] = true;
        let mut anchors = [None, None];
        let mut ring = false;
        for dir in 0..2 {
            let mut here = start;
            let mut via = radj[start][dir];
            loop {
                let next = other_end(via, here);
                if dir == 0 {
                    resistors.insert(0, via);
                } else {
                    resistors.push(via);
                }
                match next {
                    Some(v) if eligible(v) && !visited[v] => {
                        visited[v] = true;
                        if dir == 0 {
                            interior.insert(0, v);
                        } else {
                            interior.push(v);
                        }
                        via = if radj[v][0] == via {
                            radj[v][1]
                        } else {
                            radj[v][0]
                        };
                        here = v;
                    }
                    Some(v) if eligible(v) && v == start => {
                        // Closed ring of eligible nodes: no anchor to
                        // hang a rewrite on; leave it untouched.
                        ring = true;
                        break;
                    }
                    other => {
                        anchors[dir] = other;
                        break;
                    }
                }
            }
            if ring {
                break;
            }
        }
        if !ring {
            runs.push(ChainRun {
                interior,
                resistors,
                anchor_a: anchors[0],
                anchor_b: anchors[1],
            });
        }
    }

    // Decide per run whether rewriting wins, and collect the rewrites.
    let mut drop_node = vec![false; n];
    let mut drop_res = vec![false; net.resistors.len()];
    let mut chains_collapsed = 0u64;
    let mut nodes_eliminated = 0u64;
    struct Rewrite {
        run: usize,
        segments: usize,
        r_seg: f64,
        /// `(grid_index, farads)` shunt caps on the new grid
        /// (0 = anchor_a, `segments` = anchor_b).
        caps: Vec<(usize, f64)>,
    }
    let mut rewrites: Vec<Rewrite> = Vec::new();
    for (ri, run) in runs.iter().enumerate() {
        let k = run.interior.len();
        let r_tot: f64 = run
            .resistors
            .iter()
            .map(|&bi| net.resistors[bi].value)
            .sum();
        let c_tot: f64 = run.interior.iter().map(|&v| cgnd[v]).sum();
        let m = if c_tot == 0.0 {
            1
        } else {
            spec.segments_for(r_tot * c_tot)
        };
        if m > k {
            continue; // rewrite would not remove any node
        }
        // Cumulative resistive position of each interior node, then
        // split every shunt cap between its two neighboring grid nodes
        // linearly in resistive distance.
        let mut caps: Vec<(usize, f64)> = Vec::new();
        let mut pos = 0.0f64;
        for (j, &v) in run.interior.iter().enumerate() {
            pos += net.resistors[run.resistors[j]].value;
            if cgnd[v] > 0.0 {
                let x = pos / r_tot * m as f64; // in grid units
                let t = (x.floor() as usize).min(m - 1);
                let w = x - t as f64;
                if cgnd[v] * (1.0 - w) > 0.0 {
                    caps.push((t, cgnd[v] * (1.0 - w)));
                }
                if cgnd[v] * w > 0.0 {
                    caps.push((t + 1, cgnd[v] * w));
                }
            }
        }
        for &v in &run.interior {
            drop_node[v] = true;
        }
        for &bi in &run.resistors {
            drop_res[bi] = true;
        }
        chains_collapsed += 1;
        nodes_eliminated += (k - (m - 1)) as u64;
        rewrites.push(Rewrite {
            run: ri,
            segments: m,
            r_seg: r_tot / m as f64,
            caps,
        });
    }

    if rewrites.is_empty() {
        return ChainCollapse {
            network: net.clone(),
            chains_collapsed: 0,
            nodes_eliminated: 0,
        };
    }

    // Rebuild: surviving nodes keep their relative order (ports first),
    // fresh grid nodes are appended per rewrite under a prefix that
    // cannot clash with any existing node name.
    let mut remap = vec![usize::MAX; n];
    let mut node_names = Vec::new();
    for (i, name) in net.node_names.iter().enumerate() {
        if !drop_node[i] {
            remap[i] = node_names.len();
            node_names.push(name.clone());
        }
    }
    let mut prefix = String::from("chx");
    while net.node_names.iter().any(|s| s.starts_with(&prefix)) {
        prefix.push('x');
    }
    let map = |t: Option<usize>| t.map(|i| remap[i]);

    let mut resistors: Vec<Branch> = net
        .resistors
        .iter()
        .enumerate()
        .filter(|(bi, _)| !drop_res[*bi])
        .map(|(_, r)| Branch {
            a: map(r.a),
            b: map(r.b),
            value: r.value,
        })
        .collect();
    let mut capacitors: Vec<Branch> = net
        .capacitors
        .iter()
        .filter(|c| {
            let on_dropped = |t: Option<usize>| t.is_some_and(|i| drop_node[i]);
            !(on_dropped(c.a) || on_dropped(c.b))
        })
        .map(|c| Branch {
            a: map(c.a),
            b: map(c.b),
            value: c.value,
        })
        .collect();

    for (wi, rw) in rewrites.iter().enumerate() {
        let run = &runs[rw.run];
        // Grid node index → new node index (anchors map through remap;
        // interior grid nodes are freshly created).
        let mut grid: Vec<Option<usize>> = Vec::with_capacity(rw.segments + 1);
        grid.push(map(run.anchor_a));
        for t in 1..rw.segments {
            grid.push(Some(node_names.len()));
            node_names.push(format!("{prefix}{wi}_{t}"));
        }
        grid.push(map(run.anchor_b));
        for t in 0..rw.segments {
            resistors.push(Branch {
                a: grid[t],
                b: grid[t + 1],
                value: rw.r_seg,
            });
        }
        for &(t, farads) in &rw.caps {
            // A cap landing on a ground anchor is shorted out exactly.
            if let Some(node) = grid[t] {
                capacitors.push(Branch {
                    a: Some(node),
                    b: None,
                    value: farads,
                });
            }
        }
    }

    ChainCollapse {
        network: RcNetwork {
            node_names,
            num_ports: net.num_ports,
            resistors,
            capacitors,
        },
        chains_collapsed,
        nodes_eliminated,
    }
}

/// Options for [`reduce_embedded`].
#[derive(Clone, Debug)]
pub struct ExtractOptions {
    /// Node names forced to be ports in addition to the port rule.
    pub extra_ports: Vec<String>,
    /// Run the chain-collapse pre-pass with this spec before reduction.
    pub collapse: Option<ChainCollapseSpec>,
    /// Sparsification tolerance for the emitted reduced elements
    /// (`0.0` = keep everything; see
    /// [`pact_netlist::sparsify_preserving_passivity`]).
    pub sparsify: f64,
    /// Name prefix for the reduced networks' internal nodes and
    /// elements.
    pub prefix: String,
}

impl Default for ExtractOptions {
    fn default() -> ExtractOptions {
        ExtractOptions {
            extra_ports: Vec::new(),
            collapse: None,
            sparsify: 0.0,
            prefix: "pact".to_owned(),
        }
    }
}

/// Result of [`reduce_embedded`].
#[derive(Clone, Debug)]
pub struct EmbeddedReduction {
    /// The flattened deck with every reducible RC subnetwork replaced by
    /// its reduced realization (or the flattened input unchanged on the
    /// pass-through path).
    pub deck: Netlist,
    /// Per-component reductions, or `None` when the deck had nothing to
    /// reduce (pass-through).
    pub reduction: Option<ComponentReduction>,
    /// Aggregated telemetry: extraction counters
    /// (`extract_subnets`, `chains_collapsed`, `nodes_eliminated`),
    /// sanitize warnings, and every component's reduction record.
    pub telemetry: Telemetry,
    /// Internal (non-port) RC nodes in the deck before any rewriting.
    pub nodes_before: usize,
    /// Internal nodes in the re-stitched deck (retained poles across all
    /// reduced components).
    pub nodes_after: usize,
}

/// Reduces the parasitics embedded in a mixed deck end-to-end: flatten →
/// extract maximal RC subnetworks → (optional) chain collapse → sanitize
/// → per-component reduction through `session` → re-stitch.
///
/// Decks with no reducible RC subnetwork (no RC elements, or none
/// touching a non-RC device and no `extra_ports`) are returned
/// unchanged with `reduction: None` — the pass-through path costs one
/// element scan and never errors.
///
/// # Errors
///
/// [`PactError`] on flatten failures, non-physical element values, or a
/// failed reduction; factorization failures are attributed to the
/// offending node of the extracted network.
pub fn reduce_embedded(
    deck: &Netlist,
    session: &mut ReductionSession,
    opts: &ExtractOptions,
) -> Result<EmbeddedReduction, PactError> {
    let mut tel = Telemetry::new();
    let flat = if deck.instances.is_empty() {
        deck.clone()
    } else {
        tel.time("flatten", || deck.flatten())?
    };

    let extra: Vec<&str> = opts.extra_ports.iter().map(String::as_str).collect();
    let extraction = match tel.time("extract", || extract_rc(&flat, &extra)) {
        Ok(ex) => ex,
        Err(NetworkError::NoPorts) => {
            return Ok(EmbeddedReduction {
                deck: flat,
                reduction: None,
                telemetry: tel,
                nodes_before: 0,
                nodes_after: 0,
            });
        }
        Err(e) => return Err(e.into()),
    };
    let nodes_before = extraction.network.num_internal();

    let report = tel.time("sanitize", || sanitize_network(&extraction.network))?;
    report.record(&mut tel);
    let mut network = report.network;

    if let Some(spec) = &opts.collapse {
        let collapsed = tel.time("collapse", || collapse_chains(&network, spec));
        tel.counters.chains_collapsed = collapsed.chains_collapsed;
        tel.counters.nodes_eliminated = collapsed.nodes_eliminated;
        network = collapsed.network;
    }

    let reduction = session
        .reduce_network_components(&network)
        .map_err(|e| PactError::from_reduce(e, &network))?;
    tel.absorb(&reduction.telemetry());
    tel.counters.extract_subnets = reduction.reductions.len() as u64;

    let elements = tel.time("emit", || {
        reduction.to_netlist_elements(&opts.prefix, opts.sparsify)
    });
    let deck_out = splice_reduced(&flat, elements);
    let nodes_after = reduction.num_poles();

    Ok(EmbeddedReduction {
        deck: deck_out,
        reduction: Some(reduction),
        telemetry: tel,
        nodes_before,
        nodes_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admittance::FullAdmittance;
    use crate::cutoff::CutoffSpec;
    use crate::partition::Partitions;
    use crate::reduce::ReduceOptions;
    use pact_netlist::parse;

    /// A two-port RC line of `nseg` segments (series R, shunt C).
    fn line_net(nseg: usize, r_total: f64, c_total: f64) -> RcNetwork {
        let mut deck = String::from("* l\nV1 p0 0 1\nM1 q pN 0 0 n\n.model n nmos()\n");
        for i in 0..nseg {
            let a = if i == 0 { "p0".into() } else { format!("n{i}") };
            let b = if i == nseg - 1 {
                "pN".into()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!(
                "R{i} {a} {b} {}\nC{i} {b} 0 {}\n",
                r_total / nseg as f64,
                c_total / nseg as f64
            ));
        }
        extract_rc(&parse(&deck).unwrap(), &[]).unwrap().network
    }

    fn max_rel_y_err(a: &RcNetwork, b: &RcNetwork, freqs: &[f64]) -> f64 {
        let pa = Partitions::split(&a.stamp());
        let pb = Partitions::split(&b.stamp());
        let fa = FullAdmittance::new(&pa);
        let fb = FullAdmittance::new(&pb);
        let m = a.num_ports;
        assert_eq!(m, b.num_ports);
        let mut worst = 0.0f64;
        for &f in freqs {
            let ya = fa.y_at(f).unwrap();
            let yb = fb.y_at(f).unwrap();
            for i in 0..m {
                for j in 0..m {
                    let denom = ya[(i, j)].abs().max(1e-12);
                    worst = worst.max((ya[(i, j)] - yb[(i, j)]).abs() / denom);
                }
            }
        }
        worst
    }

    #[test]
    fn resistive_chain_collapses_to_one_exact_resistor() {
        let deck = "* r\nV1 a 0 1\nM1 x b 0 0 n\n.model n nmos()\n\
                    R1 a m1 10\nR2 m1 m2 20\nR3 m2 m3 30\nR4 m3 b 40\n.end\n";
        let net = extract_rc(&parse(deck).unwrap(), &[]).unwrap().network;
        assert_eq!(net.num_internal(), 3);
        let out = collapse_chains(&net, &ChainCollapseSpec::default());
        assert_eq!(out.chains_collapsed, 1);
        assert_eq!(out.nodes_eliminated, 3);
        assert_eq!(out.network.num_internal(), 0);
        assert_eq!(out.network.resistors.len(), 1);
        assert!((out.network.resistors[0].value - 100.0).abs() < 1e-12);
        let err = max_rel_y_err(&net, &out.network, &[0.0, 1e9]);
        assert!(err < 1e-12, "series merge is exact up to roundoff: {err:e}");
    }

    #[test]
    fn rc_line_resegments_within_tolerance() {
        // 200 segments, 250 Ω / 1.35 pF, 100 MHz band: the error rule
        // mandates far fewer segments than 200.
        let net = line_net(200, 250.0, 1.35e-12);
        let spec = ChainCollapseSpec::new(1e8, 1e-4).unwrap();
        let out = collapse_chains(&net, &spec);
        assert_eq!(out.chains_collapsed, 1);
        assert!(
            out.nodes_eliminated as usize > net.num_internal() / 2,
            "eliminated {} of {}",
            out.nodes_eliminated,
            net.num_internal()
        );
        assert_eq!(
            net.num_internal() - out.network.num_internal(),
            out.nodes_eliminated as usize
        );
        // Total R and C are preserved exactly.
        let tot = |b: &[Branch]| b.iter().map(|x| x.value).sum::<f64>();
        assert!((tot(&net.resistors) - tot(&out.network.resistors)).abs() < 1e-9);
        assert!((tot(&net.capacitors) - tot(&out.network.capacitors)).abs() < 1e-24);
        // In-band admittance error within the budget.
        let freqs: Vec<f64> = (0..=8).map(|k| 1e8 * k as f64 / 8.0).collect();
        let err = max_rel_y_err(&net, &out.network, &freqs);
        assert!(err <= 1e-4, "in-band error {err:.3e} exceeds budget");
    }

    #[test]
    fn collapse_is_deterministic_and_skips_short_chains() {
        let net = line_net(50, 100.0, 1e-12);
        // A generous band keeps the mandated segment count above the
        // chain length: nothing to do.
        let spec = ChainCollapseSpec::new(1e11, 1e-9).unwrap();
        let out = collapse_chains(&net, &spec);
        assert_eq!(out.chains_collapsed, 0);
        assert_eq!(out.network, net);
        // And the productive case is bit-identical across runs.
        let spec = ChainCollapseSpec::new(1e8, 1e-4).unwrap();
        let a = collapse_chains(&net, &spec);
        let b = collapse_chains(&net, &spec);
        assert_eq!(a.network, b.network);
    }

    #[test]
    fn coupling_caps_and_branches_pin_nodes() {
        // m2 carries a node-to-node coupling cap, m4 is a T-branch:
        // neither may be eliminated.
        let deck = "* p\nV1 a 0 1\nM1 x b 0 0 n\nM2 y c 0 0 n\n.model n nmos()\n\
                    R1 a m1 10\nR2 m1 m2 10\nR3 m2 m3 10\nR4 m3 m4 10\nR5 m4 b 10\n\
                    R6 m4 c 10\nCc m2 b 1f\nC1 m1 0 1f\nC3 m3 0 1f\n.end\n";
        let net = extract_rc(&parse(deck).unwrap(), &[]).unwrap().network;
        let spec = ChainCollapseSpec::new(1e9, 1e-4).unwrap();
        let out = collapse_chains(&net, &spec);
        for pinned in ["m2", "m4"] {
            assert!(
                out.network.node_index(pinned).is_some(),
                "{pinned} must survive"
            );
        }
        // The runs around the pinned nodes (a–m2, m2–m4) collapsed.
        assert_eq!(out.chains_collapsed, 2);
        assert!(out.network.node_index("m1").is_none());
        assert!(out.network.node_index("m3").is_none());
        let err = max_rel_y_err(&net, &out.network, &[0.0, 1e8, 1e9]);
        assert!(err <= 1e-4, "error {err:.3e}");
    }

    #[test]
    fn grounded_anchor_chains_collapse() {
        // A chain hanging off the port down to ground through interior
        // nodes: the ground side anchors the rewrite.
        let deck = "* g\nV1 a 0 1\nM1 x a 0 0 n\n.model n nmos()\n\
                    R1 a m1 10\nR2 m1 m2 10\nR3 m2 0 10\nC1 m1 0 1f\nC2 m2 0 1f\n.end\n";
        let net = extract_rc(&parse(deck).unwrap(), &[]).unwrap().network;
        assert_eq!(net.num_internal(), 2);
        let spec = ChainCollapseSpec::new(1e9, 1e-3).unwrap();
        let out = collapse_chains(&net, &spec);
        assert_eq!(out.chains_collapsed, 1);
        assert_eq!(out.network.num_internal(), 0);
        let err = max_rel_y_err(&net, &out.network, &[0.0, 1e8, 1e9]);
        assert!(err <= 1e-3, "error {err:.3e}");
    }

    #[test]
    fn reduce_embedded_restitches_mixed_deck() {
        let mut deck = String::from("* mix\nV1 p0 0 1\nM1 q pN 0 0 n\n.model n nmos()\n");
        let nseg = 60;
        for i in 0..nseg {
            let a = if i == 0 { "p0".into() } else { format!("n{i}") };
            let b = if i == nseg - 1 {
                "pN".into()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!("R{i} {a} {b} 5\nC{i} {b} 0 20f\n"));
        }
        deck.push_str(".end\n");
        let nl = parse(&deck).unwrap();
        let opts = ReduceOptions::new(CutoffSpec::new(3e9, 0.05).unwrap());
        let mut session = ReductionSession::new(opts);
        let out = reduce_embedded(&nl, &mut session, &ExtractOptions::default()).unwrap();
        let red = out.reduction.as_ref().expect("reducible deck");
        assert_eq!(red.reductions.len(), 1);
        assert_eq!(out.telemetry.counters.extract_subnets, 1);
        assert_eq!(out.nodes_before, nseg - 1);
        assert!(out.nodes_after < out.nodes_before);
        // Non-RC devices and cards survive; original RC elements do not.
        assert!(out.deck.elements.iter().any(|e| e.name == "V1"));
        assert!(out.deck.elements.iter().any(|e| e.name == "M1"));
        assert!(out.deck.elements.iter().all(|e| e.name != "R0"));
        assert_eq!(out.deck.models.len(), 1);
        // The spliced deck carries exactly one fresh internal node per
        // retained pole (the realization may contain negative coupling
        // capacitors, so it is simulated, never re-extracted).
        let mut fresh: Vec<String> = out
            .deck
            .elements
            .iter()
            .flat_map(|e| e.nodes())
            .filter(|n| n.starts_with("pact0_p"))
            .collect();
        fresh.sort();
        fresh.dedup();
        assert_eq!(fresh.len(), out.nodes_after);
    }

    #[test]
    fn reduce_embedded_chain_collapse_feeds_the_reducer() {
        let mut deck = String::from("* mix\nV1 p0 0 1\nM1 q pN 0 0 n\n.model n nmos()\n");
        for i in 0..300 {
            let a = if i == 0 { "p0".into() } else { format!("n{i}") };
            let b = if i == 299 {
                "pN".into()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!("R{i} {a} {b} 1\nC{i} {b} 0 5f\n"));
        }
        deck.push_str(".end\n");
        let nl = parse(&deck).unwrap();
        let opts = ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap());
        let mut session = ReductionSession::new(opts);
        let xopts = ExtractOptions {
            collapse: Some(ChainCollapseSpec::new(1e8, 1e-4).unwrap()),
            ..ExtractOptions::default()
        };
        let out = reduce_embedded(&nl, &mut session, &xopts).unwrap();
        assert_eq!(out.telemetry.counters.chains_collapsed, 1);
        assert!(out.telemetry.counters.nodes_eliminated > 0);
        assert!(out.reduction.is_some());
        // The collapse counters survive into the deterministic JSON.
        let s = out.telemetry.counters_json_string();
        assert!(s.contains("\"chains_collapsed\":1"), "{s}");
    }

    #[test]
    fn deck_without_reducible_rc_passes_through() {
        // No RC elements at all.
        let nl = parse("* d\nV1 a 0 1\nM1 b a 0 0 n\n.model n nmos()\n.end\n").unwrap();
        let opts = ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap());
        let mut session = ReductionSession::new(opts);
        let out = reduce_embedded(&nl, &mut session, &ExtractOptions::default()).unwrap();
        assert!(out.reduction.is_none());
        assert_eq!(out.nodes_before, 0);
        assert_eq!(out.telemetry.counters.extract_subnets, 0);
        assert_eq!(out.deck.elements.len(), 2, "deck unchanged");

        // RC island never touching a non-RC device: also pass-through.
        let nl = parse("* f\nR1 a b 100\nC1 b 0 1p\n.end\n").unwrap();
        let out = reduce_embedded(&nl, &mut session, &ExtractOptions::default()).unwrap();
        assert!(out.reduction.is_none());
        assert!(out.deck.elements.iter().any(|e| e.name == "R1"));
    }

    #[test]
    fn spec_rejects_bad_values() {
        assert!(ChainCollapseSpec::new(0.0, 1e-6).is_err());
        assert!(ChainCollapseSpec::new(1e9, 0.0).is_err());
        assert!(ChainCollapseSpec::new(f64::NAN, 1e-6).is_err());
    }
}
