//! A minimal, dependency-free JSON value: renderer and parser.
//!
//! The telemetry layer ([`crate::Telemetry`]) needs machine-readable
//! output (`rcfit --log-json`) without pulling external crates — the
//! workspace builds fully offline (PR 1's rule). This module implements
//! just enough of RFC 8259 for that: objects (with *preserved key
//! order*, so emitted documents are deterministic), arrays, strings with
//! escape handling, `f64` numbers, booleans and `null`.
//!
//! Numbers round-trip exactly: rendering uses Rust's shortest-repr
//! `Display` for `f64`, which `str::parse::<f64>` inverts.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is preserved so rendering is deterministic.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(String, Value)>) -> Value {
        Value::Obj(fields)
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for a number value.
    pub fn num(v: f64) -> Value {
        Value::Num(v)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number carried by a `Num`, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string carried by a `Str`, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of an `Arr`, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(v) => render_number(*v, out),
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input (including
    /// trailing garbage after the document).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing characters after document".into(),
            });
        }
        Ok(v)
    }
}

/// Error from [`Value::parse`].
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn render_number(v: f64, out: &mut String) {
    if v.is_finite() {
        // Shortest round-trip representation; integers print without a
        // fraction, which keeps counter fields bit-stable.
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Inf/NaN; encode as null (documented in DESIGN.md).
        out.push_str("null");
    }
}

/// Appends `s` to `out` as a quoted JSON string literal, escaping
/// quotes, backslashes, and control characters per RFC 8259.
///
/// This is the single escaping routine for the whole workspace — the
/// [`Value`] renderer and every hand-rolled JSON emitter (bench bins,
/// telemetry snapshots) route through it, so quoting behaviour cannot
/// drift between them. Non-ASCII text passes through verbatim: JSON is
/// UTF-8, so `é` or `Ω` needs no `\u` escape.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a quoted, escaped JSON string literal.
///
/// Convenience wrapper over [`escape_into`] for `format!`-style callers.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

fn render_string(s: &str, out: &mut String) {
    escape_into(s, out);
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let val = parse_value(bytes, pos)?;
                fields.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "invalid \\u escape"))?;
                        // Surrogates are not recombined; telemetry output
                        // never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is valid UTF-8 by
                // construction of &str).
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    b if b < 0x80 => 1,
                    b if b < 0xE0 => 2,
                    b if b < 0xF0 => 3,
                    _ => 4,
                };
                let text =
                    std::str::from_utf8(&s[..ch_len]).map_err(|_| err(*pos, "invalid utf-8"))?;
                out.push_str(text);
                *pos += ch_len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "invalid utf-8"))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| err(start, format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_document() {
        let doc = Value::obj(vec![
            ("name".into(), Value::str("rc \"line\"\n")),
            ("count".into(), Value::num(42.0)),
            ("ratio".into(), Value::num(0.1)),
            (
                "items".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null, Value::num(-3.5e-12)]),
            ),
            ("empty_obj".into(), Value::Obj(vec![])),
            ("empty_arr".into(), Value::Arr(vec![])),
        ]);
        let text = doc.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for v in [
            0.0,
            1.0,
            -1.0,
            1e-300,
            123456789.0,
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let text = Value::num(v).render();
            let back = Value::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap(), v, "text = {text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::num(17.0).render(), "17");
        assert_eq!(Value::num(0.0).render(), "0");
    }

    #[test]
    fn object_key_order_is_preserved() {
        let doc = Value::obj(vec![
            ("z".into(), Value::num(1.0)),
            ("a".into(), Value::num(2.0)),
        ]);
        assert_eq!(doc.render(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn get_and_accessors() {
        let doc = Value::parse("{\"a\": [1, 2], \"b\": \"x\"}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().as_str().unwrap(), "x");
        assert!(doc.get("c").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "{} trailing"] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let doc = Value::parse(" { \"k\\u0041\" : \"a\\nb\\\"c\" } ").unwrap();
        assert_eq!(doc.get("kA").unwrap().as_str().unwrap(), "a\nb\"c");
    }

    #[test]
    fn escape_handles_control_chars_and_non_ascii() {
        // Named escapes for the common control characters.
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(escape("line1\nline2\r\ttab"), "\"line1\\nline2\\r\\ttab\"");
        // Other control characters get \u00xx form.
        assert_eq!(escape("\u{0}\u{1f}"), "\"\\u0000\\u001f\"");
        // Non-ASCII passes through verbatim (JSON is UTF-8).
        assert_eq!(escape("nœud-Ω-日本"), "\"nœud-Ω-日本\"");
        // Round-trip through the parser.
        let original = "mixed \"x\"\\\n\u{7}é漢";
        let back = Value::parse(&escape(original)).unwrap();
        assert_eq!(back.as_str().unwrap(), original);
        // escape_into appends without clobbering existing content.
        let mut out = String::from("prefix:");
        escape_into("v", &mut out);
        assert_eq!(out, "prefix:\"v\"");
    }

    #[test]
    fn nonfinite_numbers_render_as_null() {
        assert_eq!(Value::num(f64::NAN).render(), "null");
        assert_eq!(Value::num(f64::INFINITY).render(), "null");
    }
}
