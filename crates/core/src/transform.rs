//! The first congruence transform (Section 3.1 of the paper) and the
//! matrix-free `E'` operator it induces.
//!
//! With the Cholesky factor `F Fᵀ = D` (our `F` plays the paper's `L`,
//! folding in the fill-reducing permutation) and `X = D⁻¹Q`:
//!
//! ```text
//! A' = A − QᵀX                (exact 0th moment of Y at s=0)
//! B' = B − PᵀX − XᵀR          (exact 1st moment),  P = R − EX
//! E' = F⁻¹ E F⁻ᵀ              (never formed; applied matrix-free)
//! ```
//!
//! Memory discipline follows the paper: `X` is never stored — each port
//! column triggers sparse solves against `D`, and only `m×m` dense
//! results are kept. The rows of `R'' = Uᵀ F⁻¹ P` needed by the second
//! transform are likewise computed per Ritz vector from `Q`/`R` alone.

use std::cell::RefCell;
use std::ops::Range;

use pact_lanczos::SymOp;
use pact_sparse::{
    split_ranges, CsrMat, DMat, FactorError, Ordering, ParCtx, SparseCholesky, LANES,
};

use crate::partition::Partitions;

/// Result of the first congruence transform: exact moment matrices plus
/// the factorization needed to run pole analysis on `E'`.
#[derive(Clone, Debug)]
pub struct Transform1 {
    /// `A' = A − QᵀX` — the DC port conductance (0th moment), `m×m`.
    pub a1: DMat<f64>,
    /// `B' = B − PᵀX − XᵀR` — the 1st moment, `m×m`.
    pub b1: DMat<f64>,
    /// Cholesky factorization of `D`.
    pub chol: SparseCholesky,
    /// Number of ports.
    pub m: usize,
    /// Number of internal nodes.
    pub n: usize,
}

impl Transform1 {
    /// Runs the transform on partitioned network matrices.
    ///
    /// # Errors
    ///
    /// [`FactorError`] when `D` is not positive definite — physically, an
    /// internal node with no DC path to any port.
    pub fn compute(p: &Partitions, ordering: Ordering) -> Result<Self, FactorError> {
        Self::compute_ctx(p, ordering, &ParCtx::serial())
    }

    /// Like [`Transform1::compute`], fanning the per-port column work out
    /// across the threads of `ctx`.
    ///
    /// Ports are grouped into blocks of up to [`LANES`] columns whose
    /// boundaries depend only on the port count; each block runs the
    /// blocked multi-RHS solves (`x_j = D⁻¹ q_j`, `y_j = D⁻¹ r_j`,
    /// `z_j = D⁻¹ E x_j`) and produces its `m×w` contribution columns
    /// independently. Every column is computed with the same instruction
    /// sequence regardless of which worker runs it and the contributions
    /// are written back in port order, so the result is bit-identical for
    /// every thread count.
    ///
    /// # Errors
    ///
    /// See [`Transform1::compute`].
    pub fn compute_ctx(
        p: &Partitions,
        ordering: Ordering,
        ctx: &ParCtx,
    ) -> Result<Self, FactorError> {
        let chol = SparseCholesky::factor(&p.d, ordering)?;
        Ok(Self::with_factor(p, chol, ctx))
    }

    /// Runs the moment computation of the transform against an already
    /// computed Cholesky factorization of `D`.
    ///
    /// This split lets callers choose the factorization path (strict vs
    /// pivot-perturbing, see [`pact_sparse::PivotPolicy`]) and time the
    /// factor and moment phases separately; given the factor, the moment
    /// work itself cannot fail.
    pub fn with_factor(p: &Partitions, chol: SparseCholesky, ctx: &ParCtx) -> Self {
        Self::with_factor_panel(p, chol, ctx, false).0
    }

    /// Like [`Transform1::with_factor`], optionally retaining the solved
    /// panel `S = Y − Z = D⁻¹(R − E·D⁻¹Q) = D⁻¹P` (column-major `n×m`,
    /// one column per port) that the moment fan-out already computes.
    ///
    /// The hierarchical two-level leaf path uses it to read residue rows
    /// directly: `R''[p, :] = u_pᵀF⁻¹P = (1/√λ_p)·z_pᵀ·Uᵀ·S` for Gram
    /// eigenpairs `(λ_p, z_p)` of `XᵀX` with `X = F⁻¹U`, so no per-pole
    /// triple solves are needed. Retention only copies buffers the
    /// transform produced anyway — the arithmetic sequence of the moment
    /// computation is unchanged, so `a1`/`b1` stay bit-identical to the
    /// non-retaining call.
    pub(crate) fn with_factor_panel(
        p: &Partitions,
        chol: SparseCholesky,
        ctx: &ParCtx,
        retain_panel: bool,
    ) -> (Self, Option<Vec<f64>>) {
        let m = p.m;
        let n = p.n;
        let mut a1 = p.a.to_dense();
        let mut b1 = p.b.to_dense();
        let mut panel = if retain_panel {
            vec![0.0f64; n * m]
        } else {
            Vec::new()
        };
        // Column-at-a-time over ports: x_j = D⁻¹ q_j, y_j = D⁻¹ r_j,
        // z_j = D⁻¹ (E x_j). Then
        //   A'(:,j) = A(:,j) − Qᵀ x_j
        //   B'(:,j) = B(:,j) − Rᵀ x_j − Qᵀ y_j + Qᵀ z_j
        // (the +Qᵀz_j term is XᵀEX's column; all are m-vectors).
        if m > 0 && n > 0 {
            let qt = p.q.transpose();
            let rt = p.r.transpose();
            let blocks = split_ranges(m, m.div_ceil(LANES));
            let contribs = ctx.map_items(blocks.len(), BlockScratch::default, |s, bi| {
                port_block_contribution(p, &chol, &qt, &rt, blocks[bi].clone(), s, retain_panel)
            });
            for (block, (da, db, yz)) in blocks.iter().zip(contribs) {
                for (r, j) in block.clone().enumerate() {
                    for i in 0..m {
                        a1[(i, j)] -= da[r * m + i];
                        b1[(i, j)] += db[r * m + i];
                    }
                }
                if let Some(yz) = yz {
                    panel[block.start * n..block.start * n + yz.len()].copy_from_slice(&yz);
                }
            }
        }
        // Congruence preserves exact symmetry; scrub rounding drift so the
        // reduced model is exactly symmetric.
        a1.symmetrize();
        b1.symmetrize();
        (
            Transform1 { a1, b1, chol, m, n },
            retain_panel.then_some(panel),
        )
    }

    /// The row block `R''` of the transformed connection susceptance for a
    /// set of Ritz vectors `U = [u_1 … u_k]` of `E'`:
    /// `R''[i, :] = u_iᵀ F⁻¹ P` with `P = R − E D⁻¹ Q`, computed from the
    /// sparse `Q`, `R`, `E` without ever forming `P` or `X`:
    ///
    /// ```text
    /// v_i = F⁻ᵀ u_i,  w_i = E v_i,  z_i = D⁻¹ w_i
    /// R''[i, :] = Rᵀ v_i − Qᵀ z_i
    /// ```
    pub fn r2_rows(&self, p: &Partitions, ritz_vectors: &[Vec<f64>]) -> DMat<f64> {
        self.r2_rows_ctx(p, ritz_vectors, &ParCtx::serial())
    }

    /// Like [`Transform1::r2_rows`], fanning the per-Ritz-vector solves
    /// out across the threads of `ctx`. Each row is computed by exactly
    /// one worker (with per-worker scratch, so nothing allocates in the
    /// loop) and rows are written back in Ritz order — results are
    /// bit-identical for every thread count.
    pub fn r2_rows_ctx(
        &self,
        p: &Partitions,
        ritz_vectors: &[Vec<f64>],
        ctx: &ParCtx,
    ) -> DMat<f64> {
        let k = ritz_vectors.len();
        let m = self.m;
        let n = self.n;
        let mut r2 = DMat::zeros(k, m);
        let rows = ctx.map_items(
            k,
            || R2Scratch::new(n, m),
            |s, i| {
                let u = &ritz_vectors[i];
                self.chol.ftsolve_into(u, &mut s.v, &mut s.work);
                p.e.matvec_into(&s.v, &mut s.w);
                self.chol.solve_into(&s.w, &mut s.z, &mut s.work);
                p.r.matvec_t_into(&s.v, &mut s.rv);
                p.q.matvec_t_into(&s.z, &mut s.qz);
                s.rv.iter()
                    .zip(&s.qz)
                    .map(|(rv, qz)| rv - qz)
                    .collect::<Vec<f64>>()
            },
        );
        for (i, row) in rows.into_iter().enumerate() {
            for (j, val) in row.into_iter().enumerate() {
                r2[(i, j)] = val;
            }
        }
        r2
    }

    /// The matrix-free operator `E' = F⁻¹ E F⁻ᵀ` for the Lanczos solver.
    pub fn e_prime_operator<'a>(&'a self, p: &'a Partitions) -> EPrimeOp<'a> {
        self.e_prime_operator_ctx(p, ParCtx::serial())
    }

    /// Like [`Transform1::e_prime_operator`], with the inner `E v`
    /// product row-partitioned across the threads of `ctx`.
    pub fn e_prime_operator_ctx<'a>(&'a self, p: &'a Partitions, ctx: ParCtx) -> EPrimeOp<'a> {
        let n = self.n;
        EPrimeOp {
            chol: &self.chol,
            e: &p.e,
            scratch: RefCell::new(EPrimeScratch {
                v: vec![0.0; n],
                w: vec![0.0; n],
            }),
            ctx,
        }
    }

    /// Materializes `E'` as a dense matrix — `O(n²)` memory, intended for
    /// small networks and as the dense-eigendecomposition path.
    pub fn e_prime_dense(&self, p: &Partitions) -> DMat<f64> {
        self.e_prime_dense_ctx(p, &ParCtx::serial())
    }

    /// Like [`Transform1::e_prime_dense`], with the columns partitioned
    /// across the threads of `ctx` (each column is one `E'` application,
    /// so values never depend on the partition).
    pub fn e_prime_dense_ctx(&self, p: &Partitions, ctx: &ParCtx) -> DMat<f64> {
        let n = self.n;
        let mut out = DMat::zeros(n, n);
        if n == 0 {
            return out;
        }
        ctx.for_each_chunk_mut(out.as_mut_slice(), n, |cols, chunk| {
            // The operator's scratch sits in a RefCell (not Sync), so
            // each worker builds its own serial instance.
            let op = self.e_prime_operator(p);
            let mut e = vec![0.0; n];
            for (k, j) in cols.enumerate() {
                e.iter_mut().for_each(|v| *v = 0.0);
                e[j] = 1.0;
                op.apply(&e, &mut chunk[k * n..(k + 1) * n]);
            }
        });
        // Symmetric by construction up to rounding.
        out.symmetrize();
        out
    }
}

/// Per-worker scratch of the port-block fan-out in
/// [`Transform1::compute_ctx`]: right-hand-side/solution panels
/// (column-major `n×w`), the blocked-solve workspace, and one `m`-vector
/// for the `matvec_t` results.
#[derive(Default)]
struct BlockScratch {
    rhs: Vec<f64>,
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    ex: Vec<f64>,
    work: Vec<f64>,
    mt: Vec<f64>,
}

/// Computes one port block's contribution columns: `da[r·m + i]` is
/// subtracted from `A'(i, j)` and `db[r·m + i]` added to `B'(i, j)` for
/// port `j = ports.start + r`. With `retain_panel` the solved
/// `y_j − z_j` columns are returned too (column-major `n×w`).
fn port_block_contribution(
    p: &Partitions,
    chol: &SparseCholesky,
    qt: &CsrMat,
    rt: &CsrMat,
    ports: Range<usize>,
    s: &mut BlockScratch,
    retain_panel: bool,
) -> (Vec<f64>, Vec<f64>, Option<Vec<f64>>) {
    let n = p.n;
    let m = p.m;
    let w = ports.len();
    for buf in [&mut s.rhs, &mut s.x, &mut s.y, &mut s.z, &mut s.ex] {
        buf.clear();
        buf.resize(n * w, 0.0);
    }
    s.mt.resize(m, 0.0);

    // X block: x_j = D⁻¹ q_j (row j of Qᵀ is column j of Q).
    for (r, j) in ports.clone().enumerate() {
        for (i, v) in qt.row_iter(j) {
            s.rhs[r * n + i] = v;
        }
    }
    chol.solve_block_into(&s.rhs, w, &mut s.x, &mut s.work);

    // Y block: y_j = D⁻¹ r_j. `R = 0` (no port–internal capacitive
    // coupling, the common case for ground-capacitor decks) makes every
    // y_j exactly zero: the triangular solves reproduce exact zeros from
    // a zero right-hand side, and subtracting an exact 0.0 leaves every
    // float unchanged. Skipping the solves and the Qᵀy subtraction below
    // is therefore bit-identical, not just approximately equal.
    let skip_y = rt.nnz() == 0;
    if !skip_y {
        s.rhs.iter_mut().for_each(|v| *v = 0.0);
        for (r, j) in ports.clone().enumerate() {
            for (i, v) in rt.row_iter(j) {
                s.rhs[r * n + i] = v;
            }
        }
        chol.solve_block_into(&s.rhs, w, &mut s.y, &mut s.work);
    }

    // Z block: z_j = D⁻¹ (E x_j).
    for r in 0..w {
        p.e.matvec_into(&s.x[r * n..(r + 1) * n], &mut s.ex[r * n..(r + 1) * n]);
    }
    chol.solve_block_into(&s.ex, w, &mut s.z, &mut s.work);

    let mut da = vec![0.0; m * w];
    let mut db = vec![0.0; m * w];
    for r in 0..w {
        let x = &s.x[r * n..(r + 1) * n];
        p.q.matvec_t_into(x, &mut s.mt);
        da[r * m..(r + 1) * m].copy_from_slice(&s.mt);
        p.r.matvec_t_into(x, &mut s.mt);
        for (o, v) in db[r * m..(r + 1) * m].iter_mut().zip(&s.mt) {
            *o -= v;
        }
        if !skip_y {
            p.q.matvec_t_into(&s.y[r * n..(r + 1) * n], &mut s.mt);
            for (o, v) in db[r * m..(r + 1) * m].iter_mut().zip(&s.mt) {
                *o -= v;
            }
        }
        p.q.matvec_t_into(&s.z[r * n..(r + 1) * n], &mut s.mt);
        for (o, v) in db[r * m..(r + 1) * m].iter_mut().zip(&s.mt) {
            *o += v;
        }
    }
    let yz = retain_panel.then(|| {
        s.y[..n * w]
            .iter()
            .zip(&s.z[..n * w])
            .map(|(y, z)| y - z)
            .collect::<Vec<f64>>()
    });
    (da, db, yz)
}

/// Per-worker scratch of [`Transform1::r2_rows_ctx`].
struct R2Scratch {
    v: Vec<f64>,
    w: Vec<f64>,
    z: Vec<f64>,
    work: Vec<f64>,
    rv: Vec<f64>,
    qz: Vec<f64>,
}

impl R2Scratch {
    fn new(n: usize, m: usize) -> Self {
        R2Scratch {
            v: vec![0.0; n],
            w: vec![0.0; n],
            z: vec![0.0; n],
            work: Vec::new(),
            rv: vec![0.0; m],
            qz: vec![0.0; m],
        }
    }
}

/// Matrix-free symmetric operator `x ↦ F⁻¹ E (F⁻ᵀ x)`.
///
/// Carries two scratch vectors behind a `RefCell` (since
/// [`SymOp::apply`] takes `&self`), so repeated applications — the inner
/// loop of the Lanczos iteration — allocate nothing. The `RefCell` makes
/// the operator `!Sync`; parallel callers construct one instance per
/// worker.
#[derive(Clone, Debug)]
pub struct EPrimeOp<'a> {
    chol: &'a SparseCholesky,
    e: &'a CsrMat,
    scratch: RefCell<EPrimeScratch>,
    ctx: ParCtx,
}

#[derive(Clone, Debug)]
struct EPrimeScratch {
    v: Vec<f64>,
    w: Vec<f64>,
}

impl SymOp for EPrimeOp<'_> {
    fn dim(&self) -> usize {
        self.e.nrows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let s = &mut *self.scratch.borrow_mut();
        // v = F⁻ᵀ x (w doubles as the transpose-solve workspace), then
        // w = E v, then y = F⁻¹ w computed in place in y.
        self.chol.ftsolve_into(x, &mut s.v, &mut s.w);
        self.e.matvec_into_ctx(&s.v, &mut s.w, &self.ctx);
        self.chol.fsolve_into(&s.w, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::{extract_rc, parse, Stamped};
    use pact_sparse::sym_eig;

    fn ladder(nseg: usize) -> (Stamped, Partitions) {
        // nseg-segment RC line between two ports.
        let mut deck = String::from("* ladder\nV1 p0 0 1\nRld pN 0 1k\nIprobe pN 0 0\n");
        let rseg = 250.0 / nseg as f64;
        let cseg = 1.35e-12 / nseg as f64;
        for i in 0..nseg {
            let a = if i == 0 {
                "p0".to_owned()
            } else {
                format!("n{i}")
            };
            let b = if i == nseg - 1 {
                "pN".to_owned()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!("R{i} {a} {b} {rseg}\n"));
            deck.push_str(&format!("C{i} {b} 0 {cseg}\n"));
        }
        deck.push_str(".end\n");
        let nl = parse(&deck).unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        let st = ex.network.stamp();
        let p = Partitions::split(&st);
        (st, p)
    }

    #[test]
    fn moments_match_direct_computation() {
        // A' must equal A − QᵀD⁻¹Q computed densely.
        let (_, p) = ladder(6);
        let t1 = Transform1::compute(&p, Ordering::Rcm).unwrap();
        let dd = p.d.to_dense();
        let dinv = pact_sparse::invert(&dd).unwrap();
        let qd = p.q.to_dense();
        let rd = p.r.to_dense();
        let x = dinv.matmul(&qd);
        let a1_direct = &p.a.to_dense() - &qd.transpose().matmul(&x);
        assert!((&t1.a1 - &a1_direct).norm_max() < 1e-12);
        // B' = B − RᵀX − XᵀR + XᵀEX
        let ed = p.e.to_dense();
        let b1_direct = {
            let rtx = rd.transpose().matmul(&x);
            let xtr = x.transpose().matmul(&rd);
            let xtex = x.transpose().matmul(&ed.matmul(&x));
            let mut b = p.b.to_dense();
            b = &(&b - &rtx) - &xtr;
            &b + &xtex
        };
        assert!(
            (&t1.b1 - &b1_direct).norm_max() < 1e-20,
            "B' mismatch {:e}",
            (&t1.b1 - &b1_direct).norm_max()
        );
    }

    #[test]
    fn e_prime_spectrum_matches_pencil() {
        // Eigenvalues of E' equal generalized eigenvalues of (E, D).
        let (_, p) = ladder(5);
        let t1 = Transform1::compute(&p, Ordering::MinDegree).unwrap();
        let ep = t1.e_prime_dense(&p);
        let eig = sym_eig(&ep).unwrap();
        // Direct: solve det(E - λD) = 0 via dense D^{-1}E spectrum
        // (similar matrix D^{-1/2} E D^{-1/2} shares eigenvalues with E').
        let dd = p.d.to_dense();
        let ed = p.e.to_dense();
        let dinv = pact_sparse::invert(&dd).unwrap();
        let m = dinv.matmul(&ed);
        // Eigenvalues of (non-symmetric) D⁻¹E match E' spectrum; compare
        // via traces of powers which are basis independent.
        let tr1: f64 = m.diag().iter().sum();
        let tr1_e: f64 = eig.values.iter().sum();
        assert!((tr1 - tr1_e).abs() < 1e-10 * tr1.abs().max(1e-30));
        let m2 = m.matmul(&m);
        let tr2: f64 = m2.diag().iter().sum();
        let tr2_e: f64 = eig.values.iter().map(|v| v * v).sum();
        assert!((tr2 - tr2_e).abs() < 1e-10 * tr2.abs().max(1e-30));
    }

    #[test]
    fn e_prime_operator_matches_dense() {
        let (_, p) = ladder(7);
        let t1 = Transform1::compute(&p, Ordering::Rcm).unwrap();
        let dense = t1.e_prime_dense(&p);
        let op = t1.e_prime_operator(&p);
        let n = p.n;
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut y = vec![0.0; n];
        op.apply(&x, &mut y);
        let yd = dense.matvec(&x);
        for (a, b) in y.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn e_prime_is_nonnegative_definite() {
        let (_, p) = ladder(8);
        let t1 = Transform1::compute(&p, Ordering::Rcm).unwrap();
        let ep = t1.e_prime_dense(&p);
        let eig = sym_eig(&ep).unwrap();
        for &v in &eig.values {
            assert!(v >= -1e-14, "negative eigenvalue {v}");
        }
    }

    #[test]
    fn r2_rows_match_direct() {
        let (_, p) = ladder(5);
        let t1 = Transform1::compute(&p, Ordering::Natural).unwrap();
        let ep = t1.e_prime_dense(&p);
        let eig = sym_eig(&ep).unwrap();
        let n = p.n;
        // Use the top 2 eigenvectors as "Ritz vectors".
        let vecs: Vec<Vec<f64>> = (n - 2..n)
            .map(|k| (0..n).map(|i| eig.vectors[(i, k)]).collect())
            .collect();
        let r2 = t1.r2_rows(&p, &vecs);
        // Direct: R'' = Uᵀ F⁻¹ P with P = R − E D⁻¹ Q (all dense).
        let dd = p.d.to_dense();
        let dinv = pact_sparse::invert(&dd).unwrap();
        let pmat = {
            let x = dinv.matmul(&p.q.to_dense());
            &p.r.to_dense() - &p.e.to_dense().matmul(&x)
        };
        for (i, u) in vecs.iter().enumerate() {
            // u^T F^{-1} P  = (F^{-T} u)^T P
            let v = t1.chol.ftsolve(u);
            let expect = pmat.matvec_t(&v);
            for j in 0..p.m {
                assert!(
                    (r2[(i, j)] - expect[j]).abs() < 1e-12 * expect[j].abs().max(1e-15),
                    "R'' mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn floating_internal_node_is_error() {
        // An internal node connected only through capacitors has no DC
        // path: D is singular.
        let nl = parse("* float\nV1 p 0 1\nR1 p a 100\nC1 a b 1p\nC2 b 0 1p\nM1 x p 0 0 n\n.model n nmos()\n.end\n").unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        let st = ex.network.stamp();
        let p = Partitions::split(&st);
        assert!(Transform1::compute(&p, Ordering::Rcm).is_err());
    }
}
