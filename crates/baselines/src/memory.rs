//! Analytic memory/operation models for the Section-4 complexity
//! comparison between PACT and the Padé-based methods.
//!
//! These reproduce the paper's asymptotic claims in concrete byte/flop
//! form, so the complexity bench can plot both the *measured* counters
//! from the implementations and these *modelled* curves side by side
//! (e.g. Table 4's "the Padé-based methods require 469 × 19877 × 8 =
//! 71.1 MB for the Lanczos vectors alone; MPVL requires two of these
//! blocks").

/// Modelled working memory in bytes for PACT's pole analysis stage:
/// LASO keeps two Lanczos vectors plus the converged Ritz vectors.
pub fn pact_lanczos_memory(n: usize, retained_poles: usize) -> usize {
    (2 + retained_poles) * n * 8
}

/// Modelled working memory for the symmetric block-Lanczos Padé method
/// of the paper's reference 7: one block of `m + 1` Lanczos vectors.
pub fn pade_block_memory(m: usize, n: usize) -> usize {
    (m + 1) * n * 8
}

/// Modelled working memory for MPVL (the paper's reference 6): two dense blocks of
/// `m + 1` vectors (the nonsymmetric Lanczos needs left *and* right
/// blocks).
pub fn mpvl_memory(m: usize, n: usize) -> usize {
    2 * (m + 1) * n * 8
}

/// Modelled vector operations for LASO to resolve the first pole,
/// assuming iterations grow linearly with `m` (paper's Section 4
/// assumption): `O(m)` iterations × `O(n)` per matvec.
pub fn pact_first_pole_ops(m: usize, n: usize) -> usize {
    m * n
}

/// Modelled vector operations for the block-Padé methods to resolve the
/// first pole: two blocks of `m + 1` vectors, each orthogonalized
/// against a full block — `O(m²·n)`.
pub fn pade_first_pole_ops(m: usize, n: usize) -> usize {
    2 * (m + 1) * (m + 1) * n
}

/// Pretty-prints a byte count the way the paper's tables do (MB with one
/// decimal).
pub fn format_mb(bytes: usize) -> String {
    format!("{:.1} MB", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_quote_reproduced() {
        // "469 × 19877 × 8 = 71.1 Mbytes for the Lanczos vectors alone"
        // (the paper quotes the single-block figure with m rounded to
        // the port count).
        let bytes = 469 * 19877 * 8;
        assert_eq!(format_mb(bytes), "74.6 MB");
        // The paper's 71.1 MB uses 1024²-based megabytes:
        assert!((bytes as f64 / (1024.0 * 1024.0) - 71.1).abs() < 0.2);
        // MPVL doubles it.
        assert!(mpvl_memory(468, 19877) > 2 * 71_000_000);
    }

    #[test]
    fn pact_memory_is_port_independent() {
        // LASO working memory does not grow with m.
        assert_eq!(
            pact_lanczos_memory(10_000, 5),
            pact_lanczos_memory(10_000, 5)
        );
        let small_m = pade_block_memory(10, 10_000);
        let big_m = pade_block_memory(500, 10_000);
        assert!(big_m > 40 * small_m);
    }

    #[test]
    fn ops_ratio_grows_linearly_with_ports() {
        // Padé/PACT op ratio should be ~2(m+1)²/m — roughly linear in m.
        let ratio_small =
            pade_first_pole_ops(10, 1000) as f64 / pact_first_pole_ops(10, 1000) as f64;
        let ratio_big =
            pade_first_pole_ops(100, 1000) as f64 / pact_first_pole_ops(100, 1000) as f64;
        assert!(ratio_big > 8.0 * ratio_small);
    }
}
