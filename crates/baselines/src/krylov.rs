//! Block-Krylov Padé reduction — the MPVL-like comparator (refs. 6 and 7 of the paper).
//!
//! Projects the transformed system onto the block Krylov space
//! `K_q(E', R') = span{R', E'R', …, E'^{q−1}R'}` with a block
//! Gram–Schmidt Lanczos process. The projection is a congruence (so
//! passivity is preserved, as in the paper's reference 7) and matches moments of
//! `Y(s)` — a Padé-type approximation, in contrast to PACT's pole
//! analysis.
//!
//! The implementation deliberately mirrors the *memory behaviour* the
//! paper criticizes: the whole block basis (`q·m` vectors of length `n`)
//! is retained and every new block is orthogonalized against all of it
//! — `O(m·n)` storage and `O(m²·n)` work per block, versus LASO's two
//! working vectors.

use pact::{Partitions, ReducedModel, Transform1};
use pact_lanczos::SymOp;
use pact_sparse::{axpy, dot, norm2, sym_eig, DMat, EigenError, FactorError, Ordering};

/// Result of a block-Krylov Padé reduction.
#[derive(Clone, Debug)]
pub struct KrylovReduction {
    /// The reduced model (same form as PACT's: exact first two moments
    /// plus a diagonalized internal block).
    pub model: ReducedModel,
    /// Number of length-`n` basis vectors stored (the memory figure the
    /// paper compares in Table 4).
    pub basis_vectors: usize,
    /// Modelled bytes for the Lanczos block storage (`basis_vectors · n
    /// · 8`).
    pub basis_memory_bytes: usize,
    /// Vector–vector products spent on orthogonalization.
    pub orthogonalizations: usize,
}

/// Error from the block-Krylov reduction.
#[derive(Clone, Debug)]
pub enum KrylovError {
    /// `D` was not positive definite.
    Factor(FactorError),
    /// The projected eigenproblem failed.
    Eigen(EigenError),
}

impl std::fmt::Display for KrylovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KrylovError::Factor(e) => write!(f, "krylov: {e}"),
            KrylovError::Eigen(e) => write!(f, "krylov: {e}"),
        }
    }
}

impl std::error::Error for KrylovError {}

impl From<FactorError> for KrylovError {
    fn from(e: FactorError) -> Self {
        KrylovError::Factor(e)
    }
}
impl From<EigenError> for KrylovError {
    fn from(e: EigenError) -> Self {
        KrylovError::Eigen(e)
    }
}

/// Reduces with `q` Krylov blocks (each of up to `m` vectors). The
/// reduced network has at most `q·m` internal nodes — note how this
/// couples model size to port count, unlike PACT where the retained
/// pole count is set by the cutoff alone.
///
/// # Errors
///
/// See [`KrylovError`].
pub fn block_krylov_reduce(
    parts: &Partitions,
    port_names: &[String],
    q: usize,
    ordering: Ordering,
) -> Result<KrylovReduction, KrylovError> {
    let t1 = Transform1::compute(parts, ordering)?;
    let n = parts.n;
    let m = parts.m;
    let mut orth_count = 0usize;

    // Starting block: columns of R' = F⁻¹P, obtained from r2-of-identity:
    // we need the actual columns, so build them via the operator pieces.
    // R' column j = F⁻¹ (r_j − E D⁻¹ q_j).
    let qt = parts.q.transpose();
    let rt = parts.r.transpose();
    let mut basis: Vec<Vec<f64>> = Vec::new();
    if n > 0 {
        let mut block: Vec<Vec<f64>> = Vec::with_capacity(m);
        for j in 0..m {
            let mut qj = vec![0.0; n];
            for (i, v) in qt.row_iter(j) {
                qj[i] = v;
            }
            let mut rj = vec![0.0; n];
            for (i, v) in rt.row_iter(j) {
                rj[i] = v;
            }
            let x = t1.chol.solve(&qj);
            let ex = parts.e.matvec(&x);
            let p: Vec<f64> = rj.iter().zip(&ex).map(|(r, e)| r - e).collect();
            block.push(t1.chol.fsolve(&p));
        }
        let op = t1.e_prime_operator(parts);
        let mut next_block = block;
        for _ in 0..q {
            let mut accepted: Vec<Vec<f64>> = Vec::new();
            for mut v in next_block {
                let n0 = norm2(&v);
                if n0 == 0.0 {
                    continue;
                }
                // Full orthogonalization against the entire basis (the
                // expensive part the paper's Section 4 analyzes).
                for _pass in 0..2 {
                    for b in basis.iter().chain(&accepted) {
                        let pr = dot(b, &v);
                        axpy(-pr, b, &mut v);
                        orth_count += 1;
                    }
                }
                // Deflation threshold relative to the vector's pre-orth
                // magnitude (E' can scale vectors by ~1e-10 in SI units).
                let nv = norm2(&v);
                if nv > 1e-8 * n0 {
                    pact_sparse::scale(1.0 / nv, &mut v);
                    accepted.push(v);
                }
            }
            if accepted.is_empty() {
                break;
            }
            // Next block: E' applied to each accepted vector.
            let mut nb = Vec::with_capacity(accepted.len());
            let mut y = vec![0.0; n];
            for v in &accepted {
                op.apply(v, &mut y);
                nb.push(y.clone());
            }
            basis.extend(accepted);
            next_block = nb;
        }
    }

    // Project E' onto the basis and diagonalize so the reduced model has
    // PACT's canonical (Λ, R'') form.
    let k = basis.len();
    let model = if k == 0 {
        ReducedModel {
            a1: t1.a1.clone(),
            b1: t1.b1.clone(),
            r2: DMat::zeros(0, m),
            lambdas: Vec::new(),
            port_names: port_names.to_vec(),
        }
    } else {
        let op = t1.e_prime_operator(parts);
        let mut ep_proj = DMat::zeros(k, k);
        let mut y = vec![0.0; n];
        for (j, v) in basis.iter().enumerate() {
            op.apply(v, &mut y);
            for (i, u) in basis.iter().enumerate() {
                ep_proj[(i, j)] = dot(u, &y);
            }
        }
        ep_proj.symmetrize();
        let eig = sym_eig(&ep_proj)?;
        // Rotate the basis by the eigenvectors: u_i = Σ_j z_ji b_j.
        let mut ritz: Vec<Vec<f64>> = Vec::with_capacity(k);
        for col in (0..k).rev() {
            let mut u = vec![0.0; n];
            for (j, b) in basis.iter().enumerate() {
                axpy(eig.vectors[(j, col)], b, &mut u);
            }
            ritz.push(u);
        }
        let lambdas: Vec<f64> = (0..k).rev().map(|c| eig.values[c].max(0.0)).collect();
        let r2 = t1.r2_rows(parts, &ritz);
        ReducedModel {
            a1: t1.a1.clone(),
            b1: t1.b1.clone(),
            r2,
            lambdas,
            port_names: port_names.to_vec(),
        }
    };
    Ok(KrylovReduction {
        model,
        basis_vectors: k,
        basis_memory_bytes: k * n * 8,
        orthogonalizations: orth_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::{extract_rc, parse};

    fn ladder_parts(nseg: usize) -> (Partitions, Vec<String>) {
        let mut deck = String::from("* l\nV1 p0 0 1\nI2 pN 0 0\n");
        for i in 0..nseg {
            let a = if i == 0 { "p0".into() } else { format!("n{i}") };
            let b = if i == nseg - 1 {
                "pN".into()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!("R{i} {a} {b} {}\n", 250.0 / nseg as f64));
            deck.push_str(&format!("C{i} {b} 0 {}\n", 1.35e-12 / nseg as f64));
        }
        deck.push_str(".end\n");
        let ex = extract_rc(&parse(&deck).unwrap(), &[]).unwrap();
        let ports = ex.network.node_names[..ex.network.num_ports].to_vec();
        (Partitions::split(&ex.network.stamp()), ports)
    }

    #[test]
    fn krylov_model_matches_exact_at_low_frequency() {
        let (parts, ports) = ladder_parts(30);
        let red = block_krylov_reduce(&parts, &ports, 3, Ordering::Rcm).unwrap();
        let fa = pact::FullAdmittance::new(&parts);
        for &f in &[1e7, 1e8, 1e9] {
            let exact = fa.y_at(f).unwrap();
            let approx = red.model.y_at(f);
            for i in 0..parts.m {
                for j in 0..parts.m {
                    let rel =
                        (approx[(i, j)] - exact[(i, j)]).abs() / exact[(i, j)].abs().max(1e-12);
                    assert!(rel < 0.05, "f={f:e} ({i},{j}) rel={rel}");
                }
            }
        }
    }

    #[test]
    fn krylov_preserves_passivity() {
        let (parts, ports) = ladder_parts(25);
        let red = block_krylov_reduce(&parts, &ports, 3, Ordering::Rcm).unwrap();
        assert!(red.model.is_passive(1e-8));
    }

    #[test]
    fn memory_scales_with_blocks_and_ports() {
        let (parts, ports) = ladder_parts(30);
        let r1 = block_krylov_reduce(&parts, &ports, 1, Ordering::Rcm).unwrap();
        let r3 = block_krylov_reduce(&parts, &ports, 3, Ordering::Rcm).unwrap();
        assert!(r3.basis_vectors > r1.basis_vectors);
        assert!(r3.basis_memory_bytes > r1.basis_memory_bytes);
        // Basis never exceeds q·m.
        assert!(r3.basis_vectors <= 3 * parts.m);
    }

    #[test]
    fn zero_internal_nodes() {
        let deck = "* t\nV1 a 0 1\nV2 b 0 1\nR1 a b 50\nC1 a b 1p\n.end\n";
        let ex = extract_rc(&parse(deck).unwrap(), &[]).unwrap();
        let ports = ex.network.node_names.clone();
        let parts = Partitions::split(&ex.network.stamp());
        let red = block_krylov_reduce(&parts, &ports, 2, Ordering::Natural).unwrap();
        assert_eq!(red.basis_vectors, 0);
        assert_eq!(red.model.num_poles(), 0);
    }
}
