//! # pact-baselines
//!
//! Comparator algorithms for the PACT reproduction:
//!
//! - [`admittance_moments`] + [`pade_fit`] — AWE-style explicit moment
//!   matching with a Hankel-solved Padé approximation, exposing the
//!   ill-conditioning and potential instability the paper criticizes;
//! - [`block_krylov_reduce`] — an MPVL-like block-Krylov congruence
//!   projection (refs. 6/7 of the paper): accurate and passive, but with `O(m·n)`
//!   basis storage and `O(m²·n)` orthogonalization cost that PACT's
//!   Section-4 analysis targets;
//! - [`pact_lanczos_memory`] and friends — the analytic memory/ops
//!   models behind the paper's complexity claims, used by the
//!   complexity bench to overlay modelled and measured curves.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Indexed loops couple parallel arrays in the numerical kernels.
#![allow(clippy::needless_range_loop)]

mod krylov;
mod memory;
mod moments;

pub use krylov::{block_krylov_reduce, KrylovError, KrylovReduction};
pub use memory::{
    format_mb, mpvl_memory, pact_first_pole_ops, pact_lanczos_memory, pade_block_memory,
    pade_first_pole_ops,
};
pub use moments::{admittance_moments, pade_fit, MomentSeries, PadeError, PadeModel};
