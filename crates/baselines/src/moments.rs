//! Explicit moment computation and AWE-style Padé approximation.
//!
//! Asymptotic Waveform Evaluation expands the port admittance in moments
//! at `s = 0` and fits poles/residues through a Padé approximation
//! solved from a Hankel system. The paper's Section 1 critique — the
//! moment matrix becomes numerically ill-conditioned as the order grows,
//! so more moments do **not** mean a better fit, and stability is not
//! guaranteed — is directly observable with this implementation (see the
//! `hankel_conditioning_degrades` test and the ablation bench).

use pact::Partitions;
use pact_sparse::{Complex64, DMat, DenseLu, FactorError, Ordering, SparseCholesky};

/// Moment sequence of one admittance entry `Y_ij(s) = Σ_k m_k s^k`.
#[derive(Clone, Debug)]
pub struct MomentSeries {
    /// Moments `m_0 … m_K`.
    pub moments: Vec<f64>,
}

/// Computes the first `count` moments of every port-pair admittance:
/// result `[k]` is the `m×m` matrix of `k`-th moments.
///
/// The expansion follows eq. (3): with `X_0 = D⁻¹(Q + sR)` expanded in
/// powers of `s`, each moment needs one sparse solve per port.
///
/// # Errors
///
/// [`FactorError`] when `D` is not positive definite.
pub fn admittance_moments(
    parts: &Partitions,
    count: usize,
    ordering: Ordering,
) -> Result<Vec<DMat<f64>>, FactorError> {
    let m = parts.m;
    let n = parts.n;
    let chol = SparseCholesky::factor(&parts.d, ordering)?;
    let mut out: Vec<DMat<f64>> = Vec::with_capacity(count);
    // Moment 0: A − QᵀD⁻¹Q;  moment 1: B − QᵀD⁻¹R − RᵀD⁻¹Q + XᵀEX …
    // computed per port column via the recursion
    //   u_0 = D⁻¹ q_j,  u_1 = D⁻¹ (r_j − E u_0),  u_k = −D⁻¹ E u_{k−1}
    // giving (D + sE)⁻¹(q_j + s r_j) = Σ_k u_k s^k, so
    //   Y(s)(:,j) = A(:,j) + sB(:,j) − (Q + sR)ᵀ Σ_k u_k s^k.
    let qt = parts.q.transpose();
    let rt = parts.r.transpose();
    for _ in 0..count {
        out.push(DMat::zeros(m, m));
    }
    // Constant parts.
    for k in 0..count.min(2) {
        let src = if k == 0 { &parts.a } else { &parts.b };
        for i in 0..m {
            for (j, v) in src.row_iter(i) {
                out[k][(i, j)] += v;
            }
        }
    }
    if n == 0 {
        return Ok(out);
    }
    let col_of = |t: &pact_sparse::CsrMat, j: usize| {
        let mut v = vec![0.0; n];
        for (i, val) in t.row_iter(j) {
            v[i] = val;
        }
        v
    };
    for j in 0..m {
        let qj = col_of(&qt, j);
        let rj = col_of(&rt, j);
        let mut u_prev = chol.solve(&qj); // u_0
        for k in 0..count {
            // moment k gets −(Qᵀ u_k + Rᵀ u_{k−1})
            let qtu = parts.q.matvec_t(&u_prev);
            for i in 0..m {
                out[k][(i, j)] -= qtu[i];
            }
            if k + 1 < count {
                let rtu = parts.r.matvec_t(&u_prev);
                for i in 0..m {
                    out[k + 1][(i, j)] -= rtu[i];
                }
            }
            // u_{k+1} = D⁻¹ (δ_{k,0}·r_j − E u_k)
            if k + 1 < count {
                let mut rhs = parts.e.matvec(&u_prev);
                for v in rhs.iter_mut() {
                    *v = -*v;
                }
                if k == 0 {
                    for (x, r) in rhs.iter_mut().zip(&rj) {
                        *x += r;
                    }
                }
                u_prev = chol.solve(&rhs);
            }
        }
    }
    Ok(out)
}

/// A scalar pole/residue model fitted by AWE from `2q` moments:
/// `y(s) ≈ m0 + m1·s + s²·Σ r_i/(1 − s/p_i)`-style rational form.
///
/// Internally the classic AWE form is used: `h(s) = Σ k_i/(s − p_i)`
/// matched to the moment series of the *remainder* after the first two
/// (exactly-matched) moments.
#[derive(Clone, Debug)]
pub struct PadeModel {
    /// Matched zeroth/first moments (kept exact, like PACT).
    pub m0: f64,
    /// First moment.
    pub m1: f64,
    /// Pole locations (should be real negative for RC; AWE can produce
    /// positive or complex ones — that is its documented failure mode).
    pub poles: Vec<Complex64>,
    /// Residues paired with `poles`.
    pub residues: Vec<Complex64>,
    /// Estimated condition number of the Hankel system solved.
    pub hankel_condition: f64,
    /// Number of unstable (right-half-plane) poles that were produced.
    pub unstable_poles: usize,
}

/// Error from the Padé fit.
#[derive(Clone, Debug, PartialEq)]
pub enum PadeError {
    /// Not enough moments for the requested order (`need`, `got`).
    NotEnoughMoments {
        /// Required count.
        need: usize,
        /// Provided count.
        got: usize,
    },
    /// The Hankel system was numerically singular.
    SingularHankel,
}

impl std::fmt::Display for PadeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PadeError::NotEnoughMoments { need, got } => {
                write!(f, "padé needs {need} moments, got {got}")
            }
            PadeError::SingularHankel => write!(f, "singular Hankel system"),
        }
    }
}

impl std::error::Error for PadeError {}

/// Fits a `q`-pole AWE model to a scalar moment sequence
/// (`moments[k]` = `m_k`). Moments 0 and 1 are reproduced exactly; poles
/// are fitted to moments `2 … 2q+1`.
///
/// # Errors
///
/// [`PadeError`] if fewer than `2q + 2` moments are supplied or the
/// Hankel system cannot be solved.
pub fn pade_fit(moments: &[f64], q: usize) -> Result<PadeModel, PadeError> {
    let need = 2 * q + 2;
    if moments.len() < need {
        return Err(PadeError::NotEnoughMoments {
            need,
            got: moments.len(),
        });
    }
    // Remainder series: c_k = moments[k+2], k = 0 … 2q−1.
    let c: Vec<f64> = moments[2..2 + 2 * q].to_vec();
    // Solve the Hankel system  H a = −c_tail  for the denominator
    // coefficients of the Padé approximation.
    let mut h = DMat::zeros(q, q);
    for i in 0..q {
        for j in 0..q {
            h[(i, j)] = c[i + j];
        }
    }
    let rhs: Vec<f64> = (0..q).map(|i| -c[q + i]).collect();
    let cond = condition_estimate(&h);
    let lu = DenseLu::factor(&h).map_err(|_| PadeError::SingularHankel)?;
    let a = lu.solve(&rhs);
    // Characteristic polynomial: x^q + a_{q-1} x^{q-1} + … + a_0, whose
    // roots are 1/p_i. (AWE convention.)
    let mut poly = vec![1.0];
    for k in (0..q).rev() {
        poly.push(a[k]);
    }
    let roots = real_polynomial_roots(&poly);
    if roots.len() < q {
        return Err(PadeError::SingularHankel);
    }
    // Roots are x_i = 1/p_i; the remainder series is
    //   g(s) = Σ_k c_k s^k ≈ Σ_i a_i / (1 − s·x_i),  c_k = Σ_i a_i x_i^k.
    let poles: Vec<Complex64> = roots
        .iter()
        .map(|&x| {
            if x.abs() < 1e-300 {
                Complex64::from_real(-1e300)
            } else {
                Complex64::from_real(1.0 / x)
            }
        })
        .collect();
    // Residues a_i from the first q remainder moments (Vandermonde in x).
    let mut v = DMat::<Complex64>::zeros(q, q);
    for (col, &x) in roots.iter().enumerate() {
        let xi = Complex64::from_real(x);
        let mut acc = Complex64::ONE;
        for row in 0..q {
            v[(row, col)] = acc;
            acc *= xi;
        }
    }
    let rhs_c: Vec<Complex64> = (0..q).map(|k| Complex64::from_real(c[k])).collect();
    let residues = match DenseLu::factor(&v) {
        Ok(lu) => lu.solve(&rhs_c),
        Err(_) => return Err(PadeError::SingularHankel),
    };
    let unstable = poles.iter().filter(|p| p.re > 0.0).count();
    Ok(PadeModel {
        m0: moments[0],
        m1: moments[1],
        poles,
        residues,
        hankel_condition: cond,
        unstable_poles: unstable,
    })
}

impl PadeModel {
    /// Evaluates the fitted rational model at `s = j·2πf`.
    pub fn y_at(&self, f: f64) -> Complex64 {
        let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * f);
        let mut y = Complex64::from_real(self.m0) + s.scale(self.m1);
        // Remainder s²·g(s) with g(s) = Σ a_i/(1 − s/p_i), matching the
        // moment series from s² upward.
        for (p, a) in self.poles.iter().zip(&self.residues) {
            y += s * s * *a / (Complex64::ONE - s / *p);
        }
        y
    }

    /// `true` when all poles are in the open left half-plane.
    pub fn is_stable(&self) -> bool {
        self.unstable_poles == 0
    }
}

/// Rough 1-norm condition estimate via explicit inverse (fine for the
/// small Hankel matrices AWE uses).
fn condition_estimate(h: &DMat<f64>) -> f64 {
    let norm1 = |m: &DMat<f64>| -> f64 {
        let mut worst = 0.0f64;
        for j in 0..m.ncols() {
            let s: f64 = (0..m.nrows()).map(|i| m[(i, j)].abs()).sum();
            worst = worst.max(s);
        }
        worst
    };
    match pact_sparse::invert(h) {
        Ok(inv) => norm1(h) * norm1(&inv),
        Err(_) => f64::INFINITY,
    }
}

/// All real roots of a real polynomial (highest degree first) via
/// eigenvalues of the companion matrix; complex pairs are returned as
/// their real parts paired (adequate for diagnostics — RC networks have
/// real poles, deviations signal Padé breakdown).
fn real_polynomial_roots(poly: &[f64]) -> Vec<f64> {
    let n = poly.len() - 1;
    if n == 0 {
        return Vec::new();
    }
    // Companion matrix (monic).
    let mut comp = DMat::zeros(n, n);
    for i in 1..n {
        comp[(i, i - 1)] = 1.0;
    }
    for i in 0..n {
        comp[(i, n - 1)] = -poly[n - i];
    }
    // The companion matrix is not symmetric; use the symmetrized QR-free
    // approach: roots of RC Padé denominators are real, so Newton from
    // deflation works. Use eigenvalues of comp via the unsymmetric power
    // method + deflation for robustness at small n.
    unsymmetric_real_eigs(&comp)
}

/// Real eigenvalues of a small unsymmetric matrix by shifted QR on the
/// symmetric part fallback: for our companion matrices (real-rooted in
/// the well-conditioned case), bisection on the characteristic
/// polynomial suffices.
fn unsymmetric_real_eigs(a: &DMat<f64>) -> Vec<f64> {
    let n = a.nrows();
    // Characteristic polynomial evaluation via det(A − xI) using LU.
    let charpoly = |x: f64| -> f64 {
        let mut m = a.clone();
        for i in 0..n {
            m[(i, i)] -= x;
        }
        match DenseLu::factor(&m) {
            Ok(lu) => lu.det(),
            Err(_) => 0.0,
        }
    };
    // Bracket roots on a log-spaced grid (poles λ are positive time
    // constants in AWE companion form; scan both signs).
    let mut roots = Vec::new();
    let mut grid: Vec<f64> = Vec::new();
    for k in -60..=60 {
        let mag = 10f64.powf(k as f64 / 4.0);
        grid.push(-mag);
        grid.push(mag);
    }
    grid.push(0.0);
    grid.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let mut prev_x = grid[0];
    let mut prev_f = charpoly(prev_x);
    for &x in &grid[1..] {
        let f = charpoly(x);
        if prev_f == 0.0 {
            roots.push(prev_x);
        } else if prev_f.signum() != f.signum() && f != 0.0 {
            // Bisection.
            let (mut lo, mut hi, mut flo) = (prev_x, x, prev_f);
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                let fm = charpoly(mid);
                if fm == 0.0 {
                    lo = mid;
                    break;
                }
                if fm.signum() == flo.signum() {
                    lo = mid;
                    flo = fm;
                } else {
                    hi = mid;
                }
            }
            roots.push(0.5 * (lo + hi));
        }
        prev_x = x;
        prev_f = f;
    }
    roots.truncate(n);
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::{extract_rc, parse};

    fn ladder_parts(nseg: usize) -> Partitions {
        let mut deck = String::from("* l\nV1 p0 0 1\nI2 pN 0 0\n");
        for i in 0..nseg {
            let a = if i == 0 { "p0".into() } else { format!("n{i}") };
            let b = if i == nseg - 1 {
                "pN".into()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!("R{i} {a} {b} {}\n", 250.0 / nseg as f64));
            deck.push_str(&format!("C{i} {b} 0 {}\n", 1.35e-12 / nseg as f64));
        }
        deck.push_str(".end\n");
        let ex = extract_rc(&parse(&deck).unwrap(), &[]).unwrap();
        Partitions::split(&ex.network.stamp())
    }

    #[test]
    fn first_two_moments_match_pact() {
        let parts = ladder_parts(10);
        let mom = admittance_moments(&parts, 4, Ordering::Rcm).unwrap();
        let t1 = pact::Transform1::compute(&parts, Ordering::Rcm).unwrap();
        assert!((&mom[0] - &t1.a1).norm_max() < 1e-12 * t1.a1.norm_max());
        assert!((&mom[1] - &t1.b1).norm_max() < 1e-12 * t1.b1.norm_max().max(1e-20));
    }

    #[test]
    fn moments_match_finite_difference_of_exact_y() {
        // m1 ≈ dY/ds at 0 along the imaginary axis.
        let parts = ladder_parts(8);
        let mom = admittance_moments(&parts, 3, Ordering::Rcm).unwrap();
        let fa = pact::FullAdmittance::new(&parts);
        let f = 1e3; // tiny
        let y = fa.y_at(f).unwrap();
        let w = 2.0 * std::f64::consts::PI * f;
        for i in 0..parts.m {
            for j in 0..parts.m {
                assert!(
                    (y[(i, j)].im / w - mom[1][(i, j)]).abs()
                        <= 1e-4 * mom[1][(i, j)].abs().max(1e-18),
                    "m1 mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn single_pole_pade_recovers_rc_pole() {
        // One port, one internal node: Y11 has a single pole at
        // s = −D/E = −(1/R)/C = −1e9 rad/s.
        let deck = "* rc\nV1 a 0 1\nR1 a b 1k\nC1 b 0 1p\n.end\n";
        let ex = extract_rc(&parse(deck).unwrap(), &[]).unwrap();
        assert_eq!(ex.network.num_internal(), 1);
        let parts = Partitions::split(&ex.network.stamp());
        let mom = admittance_moments(&parts, 4, Ordering::Natural).unwrap();
        let series: Vec<f64> = mom.iter().map(|m| m[(0, 0)]).collect();
        let model = pade_fit(&series, 1).unwrap();
        assert!(model.is_stable());
        assert_eq!(model.poles.len(), 1);
        let p = model.poles[0];
        assert!(p.im.abs() < 1e-3 * p.re.abs());
        assert!(
            (p.re + 1e9).abs() < 1e3,
            "pole at {} rad/s, expected -1e9",
            p.re
        );
        // And the model tracks the exact admittance near the pole.
        let fa = pact::FullAdmittance::new(&parts);
        for &f in &[1e7, 1.59e8, 1e9] {
            let exact = fa.y_at(f).unwrap()[(0, 0)];
            let approx = model.y_at(f);
            assert!((approx - exact).abs() / exact.abs() < 1e-6, "f={f:e}");
        }
    }

    #[test]
    fn pade_accuracy_at_low_frequency() {
        let parts = ladder_parts(20);
        let mom = admittance_moments(&parts, 8, Ordering::Rcm).unwrap();
        let series: Vec<f64> = mom.iter().map(|m| m[(0, 0)]).collect();
        let model = pade_fit(&series, 2).unwrap();
        let fa = pact::FullAdmittance::new(&parts);
        for &f in &[1e7, 1e8, 5e8] {
            let exact = fa.y_at(f).unwrap()[(0, 0)];
            let approx = model.y_at(f);
            let rel = (approx - exact).abs() / exact.abs();
            assert!(rel < 0.05, "f={f:e}: rel err {rel}");
        }
    }

    #[test]
    fn hankel_conditioning_degrades() {
        // The paper's AWE critique: condition number of the moment
        // (Hankel) matrix explodes with order.
        let parts = ladder_parts(40);
        let mom = admittance_moments(&parts, 18, Ordering::Rcm).unwrap();
        let series: Vec<f64> = mom.iter().map(|m| m[(0, 0)]).collect();
        let low = pade_fit(&series, 2).unwrap();
        // Higher order: either the condition number explodes or the
        // Hankel system collapses outright — both are the documented AWE
        // failure mode.
        match pade_fit(&series, 8) {
            Ok(high) => assert!(
                high.hankel_condition > 1e3 * low.hankel_condition,
                "cond q=2: {:e}, q=8: {:e}",
                low.hankel_condition,
                high.hankel_condition
            ),
            Err(PadeError::SingularHankel) => {} // degenerate = ill-conditioned
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn not_enough_moments_is_error() {
        assert!(matches!(
            pade_fit(&[1.0, 2.0, 3.0], 2),
            Err(PadeError::NotEnoughMoments { .. })
        ));
    }
}
