//! Property-based tests of the netlist layer: write→parse round-trips,
//! stamping invariants (symmetry, diagonal dominance, value conservation)
//! and unstamp/restamp identity.

use proptest::prelude::*;

use pact_netlist::{
    extract_rc, parse, unstamp, Element, ElementKind, Netlist, RcNetwork, Branch,
};
use pact_sparse::{DMat, TripletMat};

fn value() -> impl Strategy<Value = f64> {
    // Realistic SPICE magnitudes, positive.
    (1e-15f64..1e6).prop_map(|v| v)
}

fn node_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}".prop_map(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn write_parse_roundtrip_rc(names in proptest::collection::vec(node_name(), 2..8),
                                values in proptest::collection::vec(value(), 1..12)) {
        // Build a deck of R/C elements over the node pool and one source.
        let mut nl = Netlist::new("roundtrip");
        nl.elements.push(Element {
            name: "V1".into(),
            kind: ElementKind::VSource {
                p: names[0].clone(),
                n: "0".into(),
                wave: pact_netlist::Waveform::Dc(1.0),
            },
        });
        for (k, v) in values.iter().enumerate() {
            let a = names[k % names.len()].clone();
            let b = names[(k + 1) % names.len()].clone();
            if a == b {
                continue;
            }
            if k % 2 == 0 {
                nl.elements.push(Element::resistor(format!("R{k}"), a, b, *v));
            } else {
                nl.elements.push(Element::capacitor(format!("C{k}"), a, b, *v));
            }
        }
        let text = nl.to_string();
        let back = parse(&text).unwrap();
        prop_assert_eq!(nl.elements.len(), back.elements.len());
        for (x, y) in nl.elements.iter().zip(&back.elements) {
            match (&x.kind, &y.kind) {
                (ElementKind::Resistor { ohms: a, .. }, ElementKind::Resistor { ohms: b, .. }) => {
                    prop_assert!((a - b).abs() <= 1e-5 * a.abs());
                }
                (ElementKind::Capacitor { farads: a, .. }, ElementKind::Capacitor { farads: b, .. }) => {
                    prop_assert!((a - b).abs() <= 1e-5 * a.abs());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn stamping_is_symmetric_nonneg(res in proptest::collection::vec(((0usize..6), (0usize..6), 1.0f64..1e5), 1..15),
                                    caps in proptest::collection::vec(((0usize..6), 1e-15f64..1e-9), 1..8)) {
        let net = RcNetwork {
            node_names: (0..6).map(|i| format!("n{i}")).collect(),
            num_ports: 2,
            resistors: res
                .into_iter()
                .map(|(a, b, v)| Branch {
                    a: Some(a),
                    b: if a == b { None } else { Some(b) },
                    value: v,
                })
                .collect(),
            capacitors: caps
                .into_iter()
                .map(|(a, v)| Branch {
                    a: Some(a),
                    b: None,
                    value: v,
                })
                .collect(),
        };
        let st = net.stamp();
        prop_assert!(st.g.is_symmetric(0.0));
        prop_assert!(st.c.is_symmetric(0.0));
        // Stamped physical networks are weakly diagonally dominant —
        // the paper's sufficient condition for non-negative definiteness.
        prop_assert!(st.g.is_diag_dominant(1e-12));
        prop_assert!(st.c.is_diag_dominant(1e-12));
    }

    #[test]
    fn unstamp_restamp_identity(gdiag in proptest::collection::vec(0.5f64..10.0, 4),
                                goff in proptest::collection::vec(-0.4f64..0.4, 6)) {
        // Build a symmetric diagonally-dominant G (scaled), zero C.
        let mut g = DMat::zeros(4, 4);
        let mut k = 0;
        for i in 0..4 {
            for j in i + 1..4 {
                g[(i, j)] = goff[k];
                g[(j, i)] = goff[k];
                k += 1;
            }
        }
        for i in 0..4 {
            g[(i, i)] = gdiag[i] + 2.0; // ensure dominance
        }
        let c = DMat::zeros(4, 4);
        let names: Vec<String> = (0..4).map(|i| format!("n{i}")).collect();
        let els = unstamp(&g, &c, &names, "t");
        // Restamp.
        let idx = |s: &str| -> Option<usize> {
            if s == "0" { None } else { names.iter().position(|n| n == s) }
        };
        let mut gt = TripletMat::new(4, 4);
        for e in &els {
            if let ElementKind::Resistor { a, b, ohms } = &e.kind {
                gt.stamp_conductance(idx(a), idx(b), 1.0 / ohms);
            }
        }
        let gs = gt.to_csr();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!(
                    (gs.get(i, j) - g[(i, j)]).abs() <= 1e-10 * g.norm_max(),
                    "mismatch at ({}, {})", i, j
                );
            }
        }
    }

    #[test]
    fn port_rule_is_stable_under_element_order(seed in 0u64..1000) {
        // Shuffling element order must not change the port set.
        let deck = "\
* order
V1 a 0 1
R1 a b 100
R2 b c 100
C1 c 0 1p
M1 x c 0 0 nch
.model nch nmos()
.end
";
        let nl = parse(deck).unwrap();
        let ex1 = extract_rc(&nl, &[]).unwrap();
        let mut shuffled = nl.clone();
        // Deterministic pseudo-shuffle from the seed.
        let n = shuffled.elements.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.elements.swap(i, j);
        }
        let ex2 = extract_rc(&shuffled, &[]).unwrap();
        prop_assert_eq!(ex1.network.num_ports, ex2.network.num_ports);
        let mut p1 = ex1.network.node_names[..ex1.network.num_ports].to_vec();
        let mut p2 = ex2.network.node_names[..ex2.network.num_ports].to_vec();
        p1.sort();
        p2.sort();
        prop_assert_eq!(p1, p2);
    }
}
