//! Randomized property tests of the netlist layer: write→parse
//! round-trips, stamping invariants (symmetry, diagonal dominance) and
//! unstamp/restamp identity.
//!
//! Each property sweeps a deterministic set of [`XorShiftRng`] seeds, so
//! failures reproduce exactly. The default sweep is small enough for the
//! tier-1 suite; the `slow-tests` feature widens it.

use pact_netlist::{extract_rc, parse, unstamp, Branch, Element, ElementKind, Netlist, RcNetwork};
use pact_sparse::{DMat, TripletMat, XorShiftRng};

#[cfg(feature = "slow-tests")]
const CASES: u64 = 96;
#[cfg(not(feature = "slow-tests"))]
const CASES: u64 = 16;

fn seeds() -> impl Iterator<Item = u64> {
    (0..CASES).map(|k| 0xbead * 1000 + k)
}

/// Realistic positive SPICE magnitude, log-uniform over 1e-15..1e6.
fn value(rng: &mut XorShiftRng) -> f64 {
    10f64.powf(rng.gen_range_f64(-15.0, 6.0))
}

/// A random lowercase identifier matching `[a-z][a-z0-9]{0,6}`.
fn node_name(rng: &mut XorShiftRng) -> String {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let mut s = String::new();
    s.push(HEAD[rng.gen_index(HEAD.len())] as char);
    for _ in 0..rng.gen_index(7) {
        s.push(TAIL[rng.gen_index(TAIL.len())] as char);
    }
    s
}

#[test]
fn write_parse_roundtrip_rc() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let names: Vec<String> = (0..2 + rng.gen_index(6))
            .map(|_| node_name(&mut rng))
            .collect();
        let values: Vec<f64> = (0..1 + rng.gen_index(11))
            .map(|_| value(&mut rng))
            .collect();
        // Build a deck of R/C elements over the node pool and one source.
        let mut nl = Netlist::new("roundtrip");
        nl.elements.push(Element {
            name: "V1".into(),
            kind: ElementKind::VSource {
                p: names[0].clone(),
                n: "0".into(),
                wave: pact_netlist::Waveform::Dc(1.0),
            },
        });
        for (k, v) in values.iter().enumerate() {
            let a = names[k % names.len()].clone();
            let b = names[(k + 1) % names.len()].clone();
            if a == b {
                continue;
            }
            if k % 2 == 0 {
                nl.elements
                    .push(Element::resistor(format!("R{k}"), a, b, *v));
            } else {
                nl.elements
                    .push(Element::capacitor(format!("C{k}"), a, b, *v));
            }
        }
        let text = nl.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(nl.elements.len(), back.elements.len(), "seed {seed}");
        for (x, y) in nl.elements.iter().zip(&back.elements) {
            match (&x.kind, &y.kind) {
                (ElementKind::Resistor { ohms: a, .. }, ElementKind::Resistor { ohms: b, .. }) => {
                    assert!((a - b).abs() <= 1e-5 * a.abs(), "seed {seed}");
                }
                (
                    ElementKind::Capacitor { farads: a, .. },
                    ElementKind::Capacitor { farads: b, .. },
                ) => {
                    assert!((a - b).abs() <= 1e-5 * a.abs(), "seed {seed}");
                }
                _ => {}
            }
        }
    }
}

#[test]
fn stamping_is_symmetric_nonneg() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let resistors: Vec<Branch> = (0..1 + rng.gen_index(14))
            .map(|_| {
                let a = rng.gen_index(6);
                let b = rng.gen_index(6);
                Branch {
                    a: Some(a),
                    b: if a == b { None } else { Some(b) },
                    value: rng.gen_range_f64(1.0, 1e5),
                }
            })
            .collect();
        let capacitors: Vec<Branch> = (0..1 + rng.gen_index(7))
            .map(|_| Branch {
                a: Some(rng.gen_index(6)),
                b: None,
                value: rng.gen_range_f64(1e-15, 1e-9),
            })
            .collect();
        let net = RcNetwork {
            node_names: (0..6).map(|i| format!("n{i}")).collect(),
            num_ports: 2,
            resistors,
            capacitors,
        };
        let st = net.stamp();
        assert!(st.g.is_symmetric(0.0), "seed {seed}");
        assert!(st.c.is_symmetric(0.0), "seed {seed}");
        // Stamped physical networks are weakly diagonally dominant —
        // the paper's sufficient condition for non-negative definiteness.
        assert!(st.g.is_diag_dominant(1e-12), "seed {seed}");
        assert!(st.c.is_diag_dominant(1e-12), "seed {seed}");
    }
}

#[test]
fn unstamp_restamp_identity() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        // Build a symmetric diagonally-dominant G (scaled), zero C.
        let mut g = DMat::zeros(4, 4);
        for i in 0..4 {
            for j in i + 1..4 {
                let v = rng.gen_range_f64(-0.4, 0.4);
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        for i in 0..4 {
            g[(i, i)] = rng.gen_range_f64(0.5, 10.0) + 2.0; // ensure dominance
        }
        let c = DMat::zeros(4, 4);
        let names: Vec<String> = (0..4).map(|i| format!("n{i}")).collect();
        let els = unstamp(&g, &c, &names, "t");
        // Restamp.
        let idx = |s: &str| -> Option<usize> {
            if s == "0" {
                None
            } else {
                names.iter().position(|n| n == s)
            }
        };
        let mut gt = TripletMat::new(4, 4);
        for e in &els {
            if let ElementKind::Resistor { a, b, ohms } = &e.kind {
                gt.stamp_conductance(idx(a), idx(b), 1.0 / ohms);
            }
        }
        let gs = gt.to_csr();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (gs.get(i, j) - g[(i, j)]).abs() <= 1e-10 * g.norm_max(),
                    "seed {seed}: mismatch at ({i}, {j})"
                );
            }
        }
    }
}

#[test]
fn port_rule_is_stable_under_element_order() {
    for seed in seeds() {
        // Shuffling element order must not change the port set.
        let deck = "\
* order
V1 a 0 1
R1 a b 100
R2 b c 100
C1 c 0 1p
M1 x c 0 0 nch
.model nch nmos()
.end
";
        let nl = parse(deck).unwrap();
        let ex1 = extract_rc(&nl, &[]).unwrap();
        let mut shuffled = nl.clone();
        // Deterministic pseudo-shuffle from the seed.
        let n = shuffled.elements.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.elements.swap(i, j);
        }
        let ex2 = extract_rc(&shuffled, &[]).unwrap();
        assert_eq!(ex1.network.num_ports, ex2.network.num_ports, "seed {seed}");
        let mut p1 = ex1.network.node_names[..ex1.network.num_ports].to_vec();
        let mut p2 = ex2.network.node_names[..ex2.network.num_ports].to_vec();
        p1.sort();
        p2.sort();
        assert_eq!(p1, p2, "seed {seed}");
    }
}
