//! Hierarchical-deck tests: `.SUBCKT` parsing, flattening semantics
//! (port binding, internal-node renaming, nesting, ground pass-through)
//! and error reporting — followed by a reduction of a flattened deck to
//! prove the hierarchy integrates with the PACT flow.

use pact_netlist::{extract_rc, parse, ElementKind, FlattenError};

#[test]
fn parses_and_flattens_simple_subckt() {
    let deck = "\
* hier
.model nch nmos ()
.subckt invd in out vdd
MN out in 0 0 nch w=4u l=1u
MP out in vdd vdd nch w=8u l=1u
Rload out mid 100
Cload mid 0 10f
.ends
Vdd vdd 0 5
X1 a b vdd invd
X2 b c vdd invd
.end
";
    let nl = parse(deck).unwrap();
    assert_eq!(nl.subckts.len(), 1);
    assert_eq!(nl.instances.len(), 2);
    assert_eq!(nl.subckts["invd"].ports, vec!["in", "out", "vdd"]);
    assert_eq!(nl.elements.len(), 1); // just Vdd at top level

    let flat = nl.flatten().unwrap();
    assert!(flat.instances.is_empty());
    // 2 instances × 4 elements + Vdd.
    assert_eq!(flat.elements.len(), 9);
    // Port binding: X1's `out` is node `b`, which is X2's `in`.
    let x1_mn = flat
        .elements
        .iter()
        .find(|e| e.name == "MN.x1")
        .expect("flattened device name");
    match &x1_mn.kind {
        ElementKind::Mosfet { d, g, s, .. } => {
            assert_eq!(d, "b");
            assert_eq!(g, "a");
            assert_eq!(s, "0"); // ground passes through
        }
        other => panic!("wrong kind {other:?}"),
    }
    // Internal node renamed per instance.
    let x2_c = flat
        .elements
        .iter()
        .find(|e| e.name == "Cload.x2")
        .expect("flattened cap");
    match &x2_c.kind {
        ElementKind::Capacitor { a, .. } => assert_eq!(a, "x2.mid"),
        other => panic!("wrong kind {other:?}"),
    }
}

#[test]
fn nested_subckts_flatten_recursively() {
    let deck = "\
* nested
.subckt leaf a b
R1 a m 50
R2 m b 50
.ends
.subckt pair x y
X1 x m leaf
X2 m y leaf
.ends
V1 p 0 1
Xtop p q pair
Rload q 0 1k
.end
";
    let nl = parse(deck).unwrap();
    let flat = nl.flatten().unwrap();
    // 2 leaves × 2 R + V1 + Rload = 6 elements.
    assert_eq!(flat.elements.len(), 6);
    // Nested internal node carries the full instance path.
    assert!(flat.elements.iter().any(|e| e
        .nodes()
        .iter()
        .any(|n| n == "xtop.x1.m" || n == "xtop.x2.m")));
    // Shared mid node between the two leaves belongs to `pair`'s scope.
    assert!(flat
        .elements
        .iter()
        .any(|e| e.nodes().iter().any(|n| n == "xtop.m")));
}

#[test]
fn unknown_subckt_is_reported() {
    let nl = parse("* e\nX1 a b nosuch\n.end\n").unwrap();
    match nl.flatten() {
        Err(FlattenError::UnknownSubckt { subckt, .. }) => assert_eq!(subckt, "nosuch"),
        other => panic!("expected UnknownSubckt, got {other:?}"),
    }
}

#[test]
fn port_mismatch_is_reported() {
    let deck = "* e\n.subckt two a b\nR1 a b 1k\n.ends\nX1 x two\n.end\n";
    let nl = parse(deck).unwrap();
    assert!(matches!(
        nl.flatten(),
        Err(FlattenError::PortMismatch {
            expected: 2,
            got: 1,
            ..
        })
    ));
}

#[test]
fn recursive_subckt_hits_depth_limit() {
    let deck = "* cycle\n.subckt loop a\nX1 a loop\n.ends\nXtop n loop\n.end\n";
    let nl = parse(deck).unwrap();
    assert!(matches!(nl.flatten(), Err(FlattenError::TooDeep { .. })));
}

#[test]
fn unterminated_subckt_is_parse_error() {
    let e = parse("* u\n.subckt broken a\nR1 a 0 1k\n.end\n").unwrap_err();
    assert!(e.message.contains("unterminated"));
}

#[test]
fn flattened_hierarchy_reduces_like_flat_deck() {
    // An RC line packaged as a subcircuit: flatten then extract+reduce.
    let mut deck = String::from("* line in a box\n.subckt seg a b\nR1 a m 25\nC1 m 0 130f\nR2 m b 25\n.ends\nV1 n0 0 1\nM1 q n4 0 0 nch\n.model nch nmos()\n");
    for i in 0..4 {
        deck.push_str(&format!("Xs{i} n{i} n{} seg\n", i + 1));
    }
    deck.push_str(".end\n");
    let nl = parse(&deck).unwrap().flatten().unwrap();
    let ex = extract_rc(&nl, &[]).unwrap();
    assert_eq!(ex.network.num_ports, 2);
    assert_eq!(ex.network.num_internal(), 7); // 3 joints + 4 mids
    let red = pact::reduce_network(
        &ex.network,
        &pact::ReduceOptions::new(pact::CutoffSpec::new(5e9, 0.05).unwrap()),
    )
    .unwrap();
    assert!(red.model.is_passive(1e-8));
}
