//! Unstamping: turning reduced admittance matrices back into a SPICE RC
//! netlist — the output half of RCFIT's flow.
//!
//! A symmetric conductance matrix maps to elements by the inverse of the
//! stamping rule: off-diagonal `g_ij ≠ 0` becomes a resistor of
//! `−1/g_ij` ohms between nodes `i` and `j` (negative values are legal in
//! SPICE and expected in reduced models — see eq. 20 of the paper, whose
//! `C` matrix has a *positive* off-diagonal), and each row's residual sum
//! `Σ_j g_ij` becomes an element to ground.

use pact_sparse::DMat;

use crate::ast::Element;

/// Unstamps a symmetric `G`/`C` matrix pair into RC elements.
///
/// `node_names[i]` names matrix row `i`; names are typically the original
/// port names followed by synthesized internal names. Elements whose value
/// would round to exactly zero are skipped. `prefix` seeds generated
/// element names (`R<prefix>_i_j`).
///
/// # Panics
///
/// Panics if the matrices are not square and matching `node_names` in
/// size.
pub fn unstamp(g: &DMat<f64>, c: &DMat<f64>, node_names: &[String], prefix: &str) -> Vec<Element> {
    let n = node_names.len();
    assert_eq!(g.nrows(), n, "G size mismatch");
    assert_eq!(g.ncols(), n, "G size mismatch");
    assert_eq!(c.nrows(), n, "C size mismatch");
    assert_eq!(c.ncols(), n, "C size mismatch");
    let mut out = Vec::new();
    let gname = |i: usize, j: usize| format!("R{prefix}_{i}_{j}");
    let cname = |i: usize, j: usize| format!("C{prefix}_{i}_{j}");

    for i in 0..n {
        let mut grow_sum = 0.0;
        let mut crow_sum = 0.0;
        let mut grow_max = 0.0f64;
        let mut crow_max = 0.0f64;
        for j in 0..n {
            grow_max = grow_max.max(g[(i, j)].abs());
            crow_max = crow_max.max(c[(i, j)].abs());
            if j == i {
                grow_sum += g[(i, i)];
                crow_sum += c[(i, i)];
                continue;
            }
            grow_sum += g[(i, j)];
            crow_sum += c[(i, j)];
            if j < i {
                continue; // emit each branch once (upper triangle)
            }
            let gij = g[(i, j)];
            if gij != 0.0 {
                out.push(Element::resistor(
                    gname(i, j),
                    node_names[i].clone(),
                    node_names[j].clone(),
                    -1.0 / gij,
                ));
            }
            let cij = c[(i, j)];
            if cij != 0.0 {
                out.push(Element::capacitor(
                    cname(i, j),
                    node_names[i].clone(),
                    node_names[j].clone(),
                    -cij,
                ));
            }
        }
        // Residual row sum stamps to ground; sums below rounding noise
        // would otherwise emit astronomically large resistors. The noise
        // floor is the *row's* own largest entry, not the global norm:
        // reduced-model rows legitimately span many decades, and a global
        // threshold silently deletes the ground elements of the small ones.
        if grow_sum.abs() <= 1e-12 * grow_max {
            grow_sum = 0.0;
        }
        if crow_sum.abs() <= 1e-12 * crow_max {
            crow_sum = 0.0;
        }
        if grow_sum != 0.0 {
            out.push(Element::resistor(
                gname(i, i),
                node_names[i].clone(),
                "0",
                1.0 / grow_sum,
            ));
        }
        if crow_sum != 0.0 {
            out.push(Element::capacitor(
                cname(i, i),
                node_names[i].clone(),
                "0",
                crow_sum,
            ));
        }
    }
    out
}

/// Sparsification heuristic (Section 5 of the paper): zeroes off-diagonal
/// entries with magnitude below `tol · max|entry|`, adding the dropped
/// magnitude onto both touching diagonals. This preserves weak diagonal
/// dominance — hence non-negative definiteness, hence passivity — while
/// shrinking the emitted element count.
///
/// Returns the number of off-diagonal entries dropped.
pub fn sparsify_preserving_passivity(m: &mut DMat<f64>, tol: f64) -> usize {
    let n = m.nrows();
    assert_eq!(n, m.ncols(), "sparsify needs a square matrix");
    if n == 0 || tol <= 0.0 {
        return 0;
    }
    let scale = m.norm_max();
    let threshold = tol * scale;
    let mut dropped = 0;
    for i in 0..n {
        for j in i + 1..n {
            let v = m[(i, j)];
            if v != 0.0 && v.abs() < threshold {
                m[(i, j)] = 0.0;
                m[(j, i)] = 0.0;
                // Compensate: moving ±v to the diagonal keeps each row's
                // dominance margin intact or better.
                m[(i, i)] += v.abs();
                m[(j, j)] += v.abs();
                dropped += 1;
            }
        }
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ElementKind;
    use pact_sparse::TripletMat;

    /// Re-stamps unstamped elements manually (reduced models may contain
    /// negative R/C, which the strict extractor rejects by design) and
    /// compares with the source matrices.
    fn roundtrip_check(g: &DMat<f64>, c: &DMat<f64>, names: &[String]) {
        let elements = unstamp(g, c, names, "x");
        let n = names.len();
        let idx = |name: &str| -> Option<usize> {
            if name == "0" {
                None
            } else {
                Some(names.iter().position(|x| x == name).unwrap())
            }
        };
        let mut gt = TripletMat::new(n, n);
        let mut ct = TripletMat::new(n, n);
        for e in &elements {
            match &e.kind {
                ElementKind::Resistor { a, b, ohms } => {
                    gt.stamp_conductance(idx(a), idx(b), 1.0 / ohms);
                }
                ElementKind::Capacitor { a, b, farads } => {
                    ct.stamp_conductance(idx(a), idx(b), *farads);
                }
                _ => panic!("unstamp emitted a non-RC element"),
            }
        }
        let (gs, cs) = (gt.to_csr(), ct.to_csr());
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (gs.get(i, j) - g[(i, j)]).abs() <= 1e-12 * g.norm_max().max(1.0),
                    "G mismatch at ({i},{j})"
                );
                assert!(
                    (cs.get(i, j) - c[(i, j)]).abs() <= 1e-12 * c.norm_max().max(1.0),
                    "C mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn simple_roundtrip() {
        // The paper's eq. (20) G matrix (in siemens) — diagonal-dominant.
        let g = DMat::from_rows(&[&[4e-3, -4e-3, 0.0], &[-4e-3, 4e-3, 0.0], &[0.0, 0.0, 32e-3]]);
        let c = DMat::from_rows(&[
            &[443e-15, 225e-15, -547e-15],
            &[225e-15, 457e-15, -547e-15],
            &[-547e-15, -547e-15, 1094e-15],
        ]);
        let names: Vec<String> = vec!["p1".into(), "p2".into(), "i1".into()];
        let elements = unstamp(&g, &c, &names, "r");
        // The +225f off-diagonal must emit a negative capacitor.
        let neg_cap = elements
            .iter()
            .any(|e| matches!(e.kind, ElementKind::Capacitor { farads, .. } if farads < 0.0));
        assert!(neg_cap, "expected a negative capacitor for +C off-diagonal");
        roundtrip_check(&g, &c, &names);
    }

    #[test]
    fn zero_rows_emit_nothing() {
        let z = DMat::zeros(2, 2);
        let names: Vec<String> = vec!["a".into(), "b".into()];
        assert!(unstamp(&z, &z, &names, "z").is_empty());
    }

    #[test]
    fn grounded_residual() {
        // G row sums nonzero → resistor to ground of 1/rowsum.
        let g = DMat::from_rows(&[&[3e-3, -1e-3], &[-1e-3, 1e-3]]);
        let c = DMat::zeros(2, 2);
        let names: Vec<String> = vec!["a".into(), "b".into()];
        let els = unstamp(&g, &c, &names, "t");
        // a: branch a-b of 1/1e-3 = 1k, ground res of 1/2e-3 = 500.
        let mut found_ground = false;
        for e in &els {
            if let ElementKind::Resistor { a, b, ohms } = &e.kind {
                if a == "a" && b == "0" {
                    assert!((ohms - 500.0).abs() < 1e-9);
                    found_ground = true;
                }
            }
        }
        assert!(found_ground);
    }

    #[test]
    fn sparsify_drops_and_compensates() {
        let mut m = DMat::from_rows(&[&[1.0, -1e-6, -0.5], &[-1e-6, 1.0, 0.0], &[-0.5, 0.0, 1.0]]);
        let dropped = sparsify_preserving_passivity(&mut m, 1e-3);
        assert_eq!(dropped, 1);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m[(1, 0)], 0.0);
        assert!((m[(0, 0)] - (1.0 + 1e-6)).abs() < 1e-15);
        // Still weakly diagonally dominant.
        for i in 0..3 {
            let off: f64 = (0..3).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            assert!(m[(i, i)] >= off);
        }
    }

    #[test]
    fn sparsify_noop_cases() {
        let mut m = DMat::identity(3);
        assert_eq!(sparsify_preserving_passivity(&mut m, 1e-3), 0);
        let mut empty = DMat::zeros(0, 0);
        assert_eq!(sparsify_preserving_passivity(&mut empty, 0.5), 0);
    }
}
