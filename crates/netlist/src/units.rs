//! SPICE engineering-notation number parsing.
//!
//! SPICE values accept scale suffixes (`1k`, `2.2u`, `0.5MEG`) followed by
//! arbitrary unit letters that are ignored (`10pF`, `50ohm`). Parsing is
//! case-insensitive, as in every SPICE dialect.

/// Error from parsing a SPICE number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseValueError {
    /// The offending token.
    pub token: String,
}

impl std::fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SPICE number `{}`", self.token)
    }
}

impl std::error::Error for ParseValueError {}

/// Parses a SPICE value token like `100`, `4.7k`, `1.35p`, `0.25MEG` or
/// `10pF`.
///
/// # Errors
///
/// Returns [`ParseValueError`] when the token has no leading numeric part.
///
/// ```
/// use pact_netlist::parse_value;
/// assert_eq!(parse_value("2.5k").unwrap(), 2500.0);
/// assert!((parse_value("1.35pF").unwrap() - 1.35e-12).abs() < 1e-24);
/// assert_eq!(parse_value("3MEG").unwrap(), 3e6);
/// ```
pub fn parse_value(token: &str) -> Result<f64, ParseValueError> {
    let t = token.trim();
    let err = || ParseValueError {
        token: token.to_owned(),
    };
    // Split the numeric prefix from the alphabetic suffix.
    let mut split = t.len();
    let bytes = t.as_bytes();
    let mut seen_digit = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let is_num = c.is_ascii_digit()
            || c == '.'
            || c == '+'
            || c == '-'
            || ((c == 'e' || c == 'E')
                && seen_digit
                && i + 1 < bytes.len()
                && (bytes[i + 1].is_ascii_digit() || bytes[i + 1] == b'+' || bytes[i + 1] == b'-'));
        if c.is_ascii_digit() {
            seen_digit = true;
        }
        if !is_num {
            split = i;
            break;
        }
        // Consume the exponent marker together with its sign.
        if (c == 'e' || c == 'E') && (bytes[i + 1] == b'+' || bytes[i + 1] == b'-') {
            i += 1;
        }
        i += 1;
    }
    if !seen_digit {
        return Err(err());
    }
    let (num, suffix) = t.split_at(split);
    let base: f64 = num.parse().map_err(|_| err())?;
    let s = suffix.to_ascii_lowercase();
    let scale = if s.starts_with("meg") {
        1e6
    } else if s.starts_with('f') {
        1e-15
    } else if s.starts_with('p') {
        1e-12
    } else if s.starts_with('n') {
        1e-9
    } else if s.starts_with('u') {
        1e-6
    } else if s.starts_with("mil") {
        25.4e-6
    } else if s.starts_with('m') {
        1e-3
    } else if s.starts_with('k') {
        1e3
    } else if s.starts_with('g') {
        1e9
    } else if s.starts_with('t') {
        1e12
    } else {
        1.0
    };
    Ok(base * scale)
}

/// Formats a value in engineering notation with a SPICE suffix, the inverse
/// of [`parse_value`] for netlist output.
pub fn format_value(v: f64) -> String {
    if v == 0.0 {
        return "0".to_owned();
    }
    let a = v.abs();
    let (scale, suffix) = if a >= 1e12 {
        (1e12, "t")
    } else if a >= 1e9 {
        (1e9, "g")
    } else if a >= 1e6 {
        (1e6, "meg")
    } else if a >= 1e3 {
        (1e3, "k")
    } else if a >= 1.0 {
        (1.0, "")
    } else if a >= 1e-3 {
        (1e-3, "m")
    } else if a >= 1e-6 {
        (1e-6, "u")
    } else if a >= 1e-9 {
        (1e-9, "n")
    } else if a >= 1e-12 {
        (1e-12, "p")
    } else {
        (1e-15, "f")
    };
    let scaled = v / scale;
    // Enough digits to round-trip RC values.
    format!("{scaled:.6}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_value("42").unwrap(), 42.0);
        assert_eq!(parse_value("-3.5").unwrap(), -3.5);
        assert_eq!(parse_value("1e-12").unwrap(), 1e-12);
        assert_eq!(parse_value("2.5E3").unwrap(), 2500.0);
        assert_eq!(parse_value("1e+6").unwrap(), 1e6);
    }

    #[test]
    fn suffixes() {
        assert_eq!(parse_value("1f").unwrap(), 1e-15);
        assert_eq!(parse_value("1p").unwrap(), 1e-12);
        assert_eq!(parse_value("1n").unwrap(), 1e-9);
        assert_eq!(parse_value("1u").unwrap(), 1e-6);
        assert_eq!(parse_value("1m").unwrap(), 1e-3);
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert_eq!(parse_value("1MEG").unwrap(), 1e6);
        assert_eq!(parse_value("1meg").unwrap(), 1e6);
        assert_eq!(parse_value("1g").unwrap(), 1e9);
        assert_eq!(parse_value("1t").unwrap(), 1e12);
    }

    #[test]
    fn unit_letters_ignored() {
        assert_eq!(parse_value("10pF").unwrap(), 1e-11);
        assert_eq!(parse_value("250ohm").unwrap(), 250.0);
        assert_eq!(parse_value("5kohm").unwrap(), 5000.0);
        assert!((parse_value("1.35pf").unwrap() - 1.35e-12).abs() < 1e-24);
    }

    #[test]
    fn m_vs_meg_distinction() {
        assert_eq!(parse_value("1m").unwrap(), 1e-3);
        assert_eq!(parse_value("1meg").unwrap(), 1e6);
        assert_eq!(parse_value("1mF").unwrap(), 1e-3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("abc").is_err());
        assert!(parse_value("").is_err());
        assert!(parse_value("k10").is_err());
    }

    #[test]
    fn format_roundtrip() {
        for &v in &[
            1.0, 250.0, 4.7e3, 1.35e-12, 2.2e-6, 3.3e6, -5e-9, 1e-15, 7e9,
        ] {
            let s = format_value(v);
            let back = parse_value(&s).unwrap();
            assert!((back - v).abs() <= 1e-6 * v.abs(), "{v} -> {s} -> {back}");
        }
        assert_eq!(format_value(0.0), "0");
    }
}
