//! # pact-netlist
//!
//! SPICE netlist handling for the PACT RC-reduction workspace: the
//! SPICE-in/SPICE-out plumbing of the paper's RCFIT tool (Section 5).
//!
//! - [`parse`] reads a SPICE deck (R/C/M/V/I cards, `.MODEL`, `.TRAN`,
//!   `.AC`, comments, continuations, engineering units);
//! - [`extract_rc`] pulls every resistor and capacitor into an
//!   [`RcNetwork`], classifying nodes by the paper's port rule;
//! - [`RcNetwork::stamp`] builds the partitioned `G`/`C` matrices;
//! - [`unstamp`] converts reduced matrices back into RC elements, and
//!   [`sparsify_preserving_passivity`] implements the element-count
//!   reduction heuristic;
//! - [`Netlist`]'s `Display` impl writes SPICE text back out.
//!
//! ```
//! use pact_netlist::{parse, extract_rc};
//! let deck = "* line\nV1 in 0 5\nR1 in out 250\nC1 out 0 1p\nRL out 0 1k\nM1 x out 0 0 nch\n.model nch nmos()\n.end\n";
//! let nl = parse(deck)?;
//! let ex = extract_rc(&nl, &[])?;
//! assert_eq!(ex.network.num_ports, 2); // `in` (V1) and `out` (M1 gate)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ast;
mod network;
mod parser;
mod units;
mod unstamp;

pub use ast::{
    is_ground, Analysis, DiodeModel, Element, ElementKind, FlattenError, MosModel, Netlist, Subckt,
    SubcktInstance, Waveform,
};
pub use network::{extract_rc, Branch, Extraction, NetworkError, RcNetwork, Stamped};
pub use parser::{parse, ParseNetlistError};
pub use units::{format_value, parse_value, ParseValueError};
pub use unstamp::{sparsify_preserving_passivity, unstamp};

/// Splices a reduced RC network back into a deck: the original RC elements
/// are removed and the reduced elements appended, leaving all other
/// devices, models and analyses untouched (the final box of RCFIT's
/// flowchart).
pub fn splice_reduced(original: &Netlist, reduced_elements: Vec<Element>) -> Netlist {
    let mut out = Netlist {
        title: format!("{} (RC network reduced by PACT)", original.title),
        elements: Vec::new(),
        models: original.models.clone(),
        diode_models: original.diode_models.clone(),
        analyses: original.analyses.clone(),
        subckts: original.subckts.clone(),
        instances: original.instances.clone(),
    };
    for e in &original.elements {
        if !e.is_rc() {
            out.elements.push(e.clone());
        }
    }
    out.elements.extend(reduced_elements);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_removes_rc_keeps_devices() {
        let nl = parse(
            "* t\nV1 a 0 1\nR1 a b 100\nC1 b 0 1p\nM1 c b 0 0 nch\n.model nch nmos()\n.end\n",
        )
        .unwrap();
        let red = vec![Element::resistor("Rred", "a", "b", 42.0)];
        let spliced = splice_reduced(&nl, red);
        assert_eq!(spliced.elements.len(), 3); // V1, M1, Rred
        assert!(spliced.elements.iter().any(|e| e.name == "Rred"));
        assert!(spliced.elements.iter().all(|e| e.name != "R1"));
        assert_eq!(spliced.models.len(), 1);
    }
}
