//! SPICE deck parser: the "input parser" box of RCFIT's flowchart.
//!
//! Supports the element cards rich parasitic decks need (R, C, L, M, V,
//! I, the E/G/F/H controlled sources, and D diodes), `.MODEL` for
//! level-1 MOSFETs and junction diodes, `.TRAN`/`.AC`/`.DC`/`.PRINT`
//! analyses, comments (`*`), line continuations (`+`) and
//! case-insensitive keywords with engineering-unit values.

use std::collections::BTreeMap;

use crate::ast::{
    Analysis, DiodeModel, Element, ElementKind, MosModel, Netlist, Subckt, SubcktInstance, Waveform,
};
use crate::units::parse_value;

/// Error from parsing a SPICE deck, with 1-based line information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseNetlistError {
    /// 1-based source line of the offending card.
    pub line: usize,
    /// 1-based column of the offending token within that line, or 0 when
    /// the error applies to the card as a whole.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.col > 0 {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseNetlistError {}

/// Parses a SPICE deck from text.
///
/// The first line is the title (SPICE convention). Unknown dot-cards are
/// ignored with no error (HSPICE compatibility); unknown element letters
/// are an error.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending line on malformed
/// cards.
///
/// ```
/// use pact_netlist::parse;
/// let deck = "* rc line\nR1 in out 250\nC1 out 0 1.35p\n.end\n";
/// let nl = parse(deck)?;
/// assert_eq!(nl.elements.len(), 2);
/// # Ok::<(), pact_netlist::ParseNetlistError>(())
/// ```
pub fn parse(text: &str) -> Result<Netlist, ParseNetlistError> {
    // Join continuation lines, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if let Some(rest) = line.trim_start().strip_prefix('+') {
            if let Some(last) = logical.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest);
                continue;
            }
        }
        logical.push((idx + 1, line.to_owned()));
    }

    let mut nl = Netlist::default();
    // Subcircuit scope: while inside `.subckt … .ends`, cards land in a
    // scratch netlist that becomes the definition body. The line number of
    // the opening `.subckt` card rides along for error attribution.
    let mut subckt_stack: Vec<(usize, Subckt, Netlist)> = Vec::new();
    let mut first = true;
    for (lineno, line) in logical {
        let trimmed = line.trim();
        if first {
            first = false;
            // Title line (may be empty or a comment).
            nl.title = trimmed.trim_start_matches('*').trim().to_owned();
            // But some decks start immediately with a card; detect that.
            if !looks_like_card(trimmed) {
                continue;
            }
            nl.title.clear();
        }
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        // Strip trailing `$`-style comments.
        let body = match trimmed.find('$') {
            Some(pos) => trimmed[..pos].trim_end(),
            None => trimmed,
        };
        if body.is_empty() {
            continue;
        }
        // Subcircuit scope transitions.
        let lower = body.to_ascii_lowercase();
        if lower.starts_with(".subckt") {
            let toks: Vec<&str> = body.split_whitespace().collect();
            if toks.len() < 2 {
                return Err(err(lineno, ".subckt needs a name"));
            }
            subckt_stack.push((
                lineno,
                Subckt {
                    name: toks[1].to_ascii_lowercase(),
                    ports: toks[2..].iter().map(|t| (*t).to_owned()).collect(),
                    elements: Vec::new(),
                    instances: Vec::new(),
                },
                Netlist::default(),
            ));
            continue;
        }
        if lower.starts_with(".ends") {
            let (def_line, mut def, scope) = subckt_stack
                .pop()
                .ok_or_else(|| err(lineno, ".ends without matching .subckt"))?;
            def.elements = scope.elements;
            def.instances = scope.instances;
            // Models declared inside a subckt are hoisted to global scope
            // (HSPICE semantics for our purposes). Definitions always
            // register globally, even when nested — so a hoisted model
            // colliding with an existing one is a duplicate too.
            for name in scope.models.keys().chain(scope.diode_models.keys()) {
                if nl.models.contains_key(name) || nl.diode_models.contains_key(name) {
                    return Err(err(
                        def_line,
                        format!(
                            "duplicate .model definition `{name}` (hoisted from subckt `{}`)",
                            def.name
                        ),
                    ));
                }
            }
            nl.models.extend(scope.models);
            nl.diode_models.extend(scope.diode_models);
            if nl.subckts.contains_key(&def.name) {
                return Err(err(
                    def_line,
                    format!("duplicate .subckt definition `{}`", def.name),
                ));
            }
            nl.subckts.insert(def.name.clone(), def);
            continue;
        }
        let target = match subckt_stack.last_mut() {
            Some((_, _, scope)) => scope,
            None => &mut nl,
        };
        parse_card(body, lineno, target)?;
    }
    if let Some((def_line, def, _)) = subckt_stack.last() {
        return Err(err(
            *def_line,
            format!("unterminated .subckt `{}`", def.name),
        ));
    }
    Ok(nl)
}

fn looks_like_card(line: &str) -> bool {
    let lower = line.to_ascii_lowercase();
    let first = lower.chars().next().unwrap_or(' ');
    matches!(
        first,
        'r' | 'c' | 'l' | 'm' | 'v' | 'i' | 'x' | 'e' | 'g' | 'f' | 'h' | 'd' | '.'
    ) && lower.split_whitespace().count() >= 2
}

fn err(line: usize, message: impl Into<String>) -> ParseNetlistError {
    ParseNetlistError {
        line,
        col: 0,
        message: message.into(),
    }
}

fn err_at(line: usize, col: usize, message: impl Into<String>) -> ParseNetlistError {
    ParseNetlistError {
        line,
        col,
        message: message.into(),
    }
}

/// 1-based column of `token`'s first occurrence in the original card body.
///
/// Tokenization happens on a copy with `(`/`)`/`=` padded out, so token
/// positions in the token stream do not map back to source columns; the
/// token *text* is unchanged, though, so a substring search on the
/// original body recovers the column. Returns 0 (unknown) if the token
/// cannot be located.
fn col_of(body: &str, token: &str) -> usize {
    body.find(token).map(|p| p + 1).unwrap_or(0)
}

fn parse_card(body: &str, line: usize, nl: &mut Netlist) -> Result<(), ParseNetlistError> {
    // Normalize parentheses into separate tokens for PULSE(...) forms.
    let spaced = body
        .replace('(', " ( ")
        .replace(')', " ) ")
        .replace('=', " = ");
    let tokens: Vec<&str> = spaced.split_whitespace().collect();
    if tokens.is_empty() {
        return Ok(());
    }
    let head = tokens[0].to_ascii_lowercase();
    match head.chars().next().unwrap() {
        '.' => parse_dot_card(&head, &tokens, body, line, nl),
        'r' => {
            let (a, b, v) = two_node_value(&tokens, body, line)?;
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind: ElementKind::Resistor { a, b, ohms: v },
            });
            Ok(())
        }
        'c' => {
            let (a, b, v) = two_node_value(&tokens, body, line)?;
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind: ElementKind::Capacitor { a, b, farads: v },
            });
            Ok(())
        }
        'l' => {
            let (a, b, v) = two_node_value(&tokens, body, line)?;
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind: ElementKind::Inductor { a, b, henries: v },
            });
            Ok(())
        }
        'e' | 'g' => {
            // Ename p n cp cn gain / Gname p n cp cn gm.
            if tokens.len() < 6 {
                let what = if head.starts_with('e') { "E" } else { "G" };
                return Err(err(
                    line,
                    format!("expected `{what}name p n cp cn value` (controlled source)"),
                ));
            }
            let v = parse_value(tokens[5])
                .map_err(|e| err_at(line, col_of(body, tokens[5]), e.to_string()))?;
            let (p, n, cp, cn) = (
                tokens[1].to_owned(),
                tokens[2].to_owned(),
                tokens[3].to_owned(),
                tokens[4].to_owned(),
            );
            let kind = if head.starts_with('e') {
                ElementKind::Vcvs {
                    p,
                    n,
                    cp,
                    cn,
                    gain: v,
                }
            } else {
                ElementKind::Vccs {
                    p,
                    n,
                    cp,
                    cn,
                    gm: v,
                }
            };
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind,
            });
            Ok(())
        }
        'f' | 'h' => {
            // Fname p n Vctrl gain / Hname p n Vctrl ohms.
            if tokens.len() < 5 {
                let what = if head.starts_with('f') { "F" } else { "H" };
                return Err(err(
                    line,
                    format!("expected `{what}name p n vsource value` (controlled source)"),
                ));
            }
            let ctrl = tokens[3].to_owned();
            if !ctrl.to_ascii_lowercase().starts_with('v') {
                return Err(err_at(
                    line,
                    col_of(body, tokens[3]),
                    format!("controlling element `{ctrl}` must be a voltage source (V…)"),
                ));
            }
            let v = parse_value(tokens[4])
                .map_err(|e| err_at(line, col_of(body, tokens[4]), e.to_string()))?;
            let (p, n) = (tokens[1].to_owned(), tokens[2].to_owned());
            let kind = if head.starts_with('f') {
                ElementKind::Cccs {
                    p,
                    n,
                    ctrl,
                    gain: v,
                }
            } else {
                ElementKind::Ccvs {
                    p,
                    n,
                    ctrl,
                    ohms: v,
                }
            };
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind,
            });
            Ok(())
        }
        'd' => {
            // Dname anode cathode model [area=x | x].
            if tokens.len() < 4 {
                return Err(err(line, "expected `Dname anode cathode model [area=x]`"));
            }
            let mut area = 1.0;
            if tokens.len() > 4 {
                if tokens.len() >= 7 && tokens[4].eq_ignore_ascii_case("area") && tokens[5] == "=" {
                    area = parse_value(tokens[6])
                        .map_err(|e| err_at(line, col_of(body, tokens[6]), e.to_string()))?;
                } else {
                    area = parse_value(tokens[4])
                        .map_err(|e| err_at(line, col_of(body, tokens[4]), e.to_string()))?;
                }
                if area <= 0.0 || !area.is_finite() {
                    return Err(err_at(
                        line,
                        col_of(body, tokens[tokens.len() - 1]),
                        format!("diode area must be positive and finite, got {area}"),
                    ));
                }
            }
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind: ElementKind::Diode {
                    p: tokens[1].to_owned(),
                    n: tokens[2].to_owned(),
                    model: tokens[3].to_ascii_lowercase(),
                    area,
                },
            });
            Ok(())
        }
        'm' => parse_mosfet(&tokens, body, line, nl),
        'x' => {
            if tokens.len() < 3 {
                return Err(err(line, "expected `Xname node... subckt`"));
            }
            nl.instances.push(SubcktInstance {
                name: tokens[0].to_owned(),
                nodes: tokens[1..tokens.len() - 1]
                    .iter()
                    .map(|t| (*t).to_owned())
                    .collect(),
                subckt: tokens[tokens.len() - 1].to_ascii_lowercase(),
            });
            Ok(())
        }
        'v' | 'i' => {
            let wave = parse_waveform(&tokens[3..], body, line)?;
            let kind = if head.starts_with('v') {
                ElementKind::VSource {
                    p: tokens[1].to_owned(),
                    n: tokens[2].to_owned(),
                    wave,
                }
            } else {
                ElementKind::ISource {
                    p: tokens[1].to_owned(),
                    n: tokens[2].to_owned(),
                    wave,
                }
            };
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind,
            });
            Ok(())
        }
        other => Err(err(line, format!("unsupported element type `{other}`"))),
    }
}

fn two_node_value(
    tokens: &[&str],
    body: &str,
    line: usize,
) -> Result<(String, String, f64), ParseNetlistError> {
    if tokens.len() < 4 {
        return Err(err(line, "expected `NAME node1 node2 value`"));
    }
    let v =
        parse_value(tokens[3]).map_err(|e| err_at(line, col_of(body, tokens[3]), e.to_string()))?;
    Ok((tokens[1].to_owned(), tokens[2].to_owned(), v))
}

fn parse_mosfet(
    tokens: &[&str],
    body: &str,
    line: usize,
    nl: &mut Netlist,
) -> Result<(), ParseNetlistError> {
    if tokens.len() < 6 {
        return Err(err(line, "expected `Mname d g s b model [w= l=]`"));
    }
    let mut w = 10e-6;
    let mut l = 1e-6;
    let mut i = 6;
    while i < tokens.len() {
        let key = tokens[i].to_ascii_lowercase();
        if (key == "w" || key == "l") && i + 2 < tokens.len() && tokens[i + 1] == "=" {
            let v = parse_value(tokens[i + 2])
                .map_err(|e| err_at(line, col_of(body, tokens[i + 2]), e.to_string()))?;
            if key == "w" {
                w = v;
            } else {
                l = v;
            }
            i += 3;
        } else if let Some(eqpos) = key.find('=') {
            // w=10u glued form survives `=` spacing replacement only when
            // the token had no `=`; handle defensively.
            let (k, v) = key.split_at(eqpos);
            let v = parse_value(&v[1..])
                .map_err(|e| err_at(line, col_of(body, tokens[i]), e.to_string()))?;
            match k {
                "w" => w = v,
                "l" => l = v,
                _ => {}
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    nl.elements.push(Element {
        name: tokens[0].to_owned(),
        kind: ElementKind::Mosfet {
            d: tokens[1].to_owned(),
            g: tokens[2].to_owned(),
            s: tokens[3].to_owned(),
            b: tokens[4].to_owned(),
            model: tokens[5].to_ascii_lowercase(),
            w,
            l,
        },
    });
    Ok(())
}

fn parse_waveform(tokens: &[&str], body: &str, line: usize) -> Result<Waveform, ParseNetlistError> {
    if tokens.is_empty() {
        return Ok(Waveform::Dc(0.0));
    }
    let head = tokens[0].to_ascii_lowercase();
    match head.as_str() {
        "dc" => {
            let v = tokens
                .get(1)
                .ok_or_else(|| err(line, "dc needs a value"))
                .and_then(|t| {
                    parse_value(t).map_err(|e| err_at(line, col_of(body, t), e.to_string()))
                })?;
            Ok(Waveform::Dc(v))
        }
        "pulse" => {
            let vals = numeric_args(&tokens[1..], body, line)?;
            if vals.len() < 2 {
                return Err(err(line, "pulse needs at least v1 v2"));
            }
            let get = |i: usize, d: f64| vals.get(i).copied().unwrap_or(d);
            Ok(Waveform::Pulse {
                v1: vals[0],
                v2: vals[1],
                td: get(2, 0.0),
                tr: get(3, 0.0),
                tf: get(4, 0.0),
                pw: get(5, f64::INFINITY),
                per: get(6, 0.0),
            })
        }
        "pwl" => {
            let vals = numeric_args(&tokens[1..], body, line)?;
            if vals.len() % 2 != 0 {
                return Err(err(line, "pwl needs time/value pairs"));
            }
            let pts: Vec<(f64, f64)> = vals.chunks(2).map(|c| (c[0], c[1])).collect();
            for w in pts.windows(2) {
                if w[1].0 < w[0].0 {
                    return Err(err(line, "pwl times must be non-decreasing"));
                }
            }
            Ok(Waveform::Pwl(pts))
        }
        "sin" => {
            let vals = numeric_args(&tokens[1..], body, line)?;
            if vals.len() < 3 {
                return Err(err(line, "sin needs vo va freq"));
            }
            Ok(Waveform::Sin {
                vo: vals[0],
                va: vals[1],
                freq: vals[2],
            })
        }
        _ => {
            // Bare value: `V1 a 0 5`.
            let v = parse_value(tokens[0])
                .map_err(|e| err_at(line, col_of(body, tokens[0]), e.to_string()))?;
            Ok(Waveform::Dc(v))
        }
    }
}

fn numeric_args(tokens: &[&str], body: &str, line: usize) -> Result<Vec<f64>, ParseNetlistError> {
    let mut out = Vec::new();
    for t in tokens {
        if *t == "(" || *t == ")" {
            continue;
        }
        out.push(parse_value(t).map_err(|e| err_at(line, col_of(body, t), e.to_string()))?);
    }
    Ok(out)
}

fn parse_dot_card(
    head: &str,
    tokens: &[&str],
    body: &str,
    line: usize,
    nl: &mut Netlist,
) -> Result<(), ParseNetlistError> {
    match head {
        ".model" => {
            if tokens.len() < 3 {
                return Err(err(line, ".model needs name and type"));
            }
            let name = tokens[1].to_ascii_lowercase();
            let kind = tokens[2].to_ascii_lowercase();
            // Duplicate-model detection spans both namespaces: a MOSFET
            // and a diode model may not share a name either — references
            // resolve by name alone, so a collision is always ambiguous.
            if nl.models.contains_key(&name) || nl.diode_models.contains_key(&name) {
                return Err(err_at(
                    line,
                    col_of(body, tokens[1]),
                    format!("duplicate .model definition `{name}`"),
                ));
            }
            if kind == "d" || kind == "diode" {
                let mut model = DiodeModel::default_diode(name);
                let params = collect_params(&tokens[3..], body, line)?;
                for (k, v) in params {
                    match k.as_str() {
                        "is" => model.is = v,
                        "n" => model.n = v,
                        "cj0" | "cjo" => model.cj0 = v,
                        _ => {} // ignore unknown parameters
                    }
                }
                if model.is.is_nan() || model.is <= 0.0 || model.n.is_nan() || model.n <= 0.0 {
                    return Err(err_at(
                        line,
                        col_of(body, tokens[1]),
                        format!(
                            "diode model `{}` needs positive is and n (got is={}, n={})",
                            model.name, model.is, model.n
                        ),
                    ));
                }
                nl.diode_models.insert(model.name.clone(), model);
                return Ok(());
            }
            let mut model = match kind.as_str() {
                "nmos" => MosModel::default_nmos(name.clone()),
                "pmos" => MosModel::default_pmos(name.clone()),
                other => {
                    return Err(err_at(
                        line,
                        col_of(body, tokens[2]),
                        format!("unsupported model type `{other}`"),
                    ))
                }
            };
            // key = value pairs (already `=`-spaced).
            let params = collect_params(&tokens[3..], body, line)?;
            for (k, v) in params {
                match k.as_str() {
                    "vto" | "vt0" => model.vto = v,
                    "kp" => model.kp = v,
                    "lambda" => model.lambda = v,
                    "cox" => model.cox = v,
                    "cjb" => model.cjb = v,
                    _ => {} // ignore unknown parameters (HSPICE decks carry many)
                }
            }
            nl.models.insert(model.name.clone(), model);
            Ok(())
        }
        ".tran" => {
            let vals = numeric_args(&tokens[1..], body, line)?;
            if vals.len() < 2 {
                return Err(err(line, ".tran needs tstep tstop"));
            }
            nl.analyses.push(Analysis::Tran {
                tstep: vals[0],
                tstop: vals[1],
            });
            Ok(())
        }
        ".ac" => {
            if tokens.len() < 5 || !tokens[1].eq_ignore_ascii_case("dec") {
                return Err(err(line, ".ac supports `dec n fstart fstop`"));
            }
            let n: usize = tokens[2]
                .parse()
                .map_err(|_| err_at(line, col_of(body, tokens[2]), "invalid point count"))?;
            let fstart = parse_value(tokens[3])
                .map_err(|e| err_at(line, col_of(body, tokens[3]), e.to_string()))?;
            let fstop = parse_value(tokens[4])
                .map_err(|e| err_at(line, col_of(body, tokens[4]), e.to_string()))?;
            nl.analyses.push(Analysis::AcDec {
                points_per_decade: n,
                fstart,
                fstop,
            });
            Ok(())
        }
        ".dc" => {
            // .dc SRC start stop step
            if tokens.len() < 5 {
                return Err(err(line, ".dc needs `source start stop step`"));
            }
            let source = tokens[1].to_owned();
            let first = source.chars().next().unwrap_or(' ').to_ascii_lowercase();
            if first != 'v' && first != 'i' {
                return Err(err_at(
                    line,
                    col_of(body, tokens[1]),
                    format!("swept element `{source}` must be a V or I source"),
                ));
            }
            let start = parse_value(tokens[2])
                .map_err(|e| err_at(line, col_of(body, tokens[2]), e.to_string()))?;
            let stop = parse_value(tokens[3])
                .map_err(|e| err_at(line, col_of(body, tokens[3]), e.to_string()))?;
            let step = parse_value(tokens[4])
                .map_err(|e| err_at(line, col_of(body, tokens[4]), e.to_string()))?;
            if step == 0.0 || !step.is_finite() || (stop - start) * step < 0.0 {
                return Err(err_at(
                    line,
                    col_of(body, tokens[4]),
                    format!("sweep step {step} cannot reach {stop} from {start}"),
                ));
            }
            nl.analyses.push(Analysis::DcSweep {
                source,
                start,
                stop,
                step,
            });
            Ok(())
        }
        ".print" => {
            // .print [tran|ac|dc] v(node) … — the analysis keyword is
            // optional (defaults to tran, matching classic decks).
            let (analysis, rest) = match tokens.get(1).map(|t| t.to_ascii_lowercase()) {
                Some(a) if a == "tran" || a == "ac" || a == "dc" => (a, &tokens[2..]),
                _ => ("tran".to_owned(), &tokens[1..]),
            };
            // Re-assemble `v ( out )` token runs into `v(out)` variables.
            let mut vars: Vec<String> = Vec::new();
            let mut depth = 0usize;
            for t in rest {
                match *t {
                    "(" => {
                        if let Some(last) = vars.last_mut() {
                            last.push('(');
                            depth += 1;
                        }
                    }
                    ")" => {
                        if depth > 0 {
                            if let Some(last) = vars.last_mut() {
                                last.push(')');
                            }
                            depth -= 1;
                        }
                    }
                    tok => {
                        if depth > 0 {
                            if let Some(last) = vars.last_mut() {
                                last.push_str(tok);
                            }
                        } else {
                            vars.push(tok.to_ascii_lowercase());
                        }
                    }
                }
            }
            if vars.is_empty() {
                return Err(err(line, ".print needs at least one output variable"));
            }
            nl.analyses.push(Analysis::Print { analysis, vars });
            Ok(())
        }
        ".end" => Ok(()),
        _ => Ok(()), // ignore .options, .probe, ...
    }
}

fn collect_params(
    tokens: &[&str],
    body: &str,
    line: usize,
) -> Result<BTreeMap<String, f64>, ParseNetlistError> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = tokens[i];
        if t == "(" || t == ")" {
            i += 1;
            continue;
        }
        if i + 2 < tokens.len() && tokens[i + 1] == "=" {
            let v = parse_value(tokens[i + 2])
                .map_err(|e| err_at(line, col_of(body, tokens[i + 2]), e.to_string()))?;
            out.insert(t.to_ascii_lowercase(), v);
            i += 3;
        } else if i + 2 == tokens.len() && tokens[i + 1] == "=" {
            return Err(err_at(
                line,
                col_of(body, t),
                format!("parameter `{t}` missing value"),
            ));
        } else {
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rc_deck() {
        let deck = "\
* simple rc
R1 in mid 125
R2 mid out 125
Cl mid 0 1.35p
C2 out 0 0.5pF
.tran 10p 5n
.end
";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.title, "simple rc");
        assert_eq!(nl.elements.len(), 4);
        match &nl.elements[2].kind {
            ElementKind::Capacitor { farads, .. } => assert!((*farads - 1.35e-12).abs() < 1e-24),
            other => panic!("wrong kind {other:?}"),
        }
        assert_eq!(nl.analyses.len(), 1);
    }

    #[test]
    fn continuation_lines_join() {
        let deck = "* t\nV1 in 0 pulse(0 5\n+ 0 1n 1n 3n 10n)\n.end\n";
        let nl = parse(deck).unwrap();
        match &nl.elements[0].kind {
            ElementKind::VSource {
                wave: Waveform::Pulse { v2, per, .. },
                ..
            } => {
                assert_eq!(*v2, 5.0);
                assert_eq!(*per, 10e-9);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn parses_mosfet_and_model() {
        let deck = "\
* inv
.model nch nmos (vto=0.7 kp=110u lambda=0.04)
.model pch pmos (vto=-0.9 kp=40u)
M1 out in 0 0 nch w=4u l=1u
M2 out in vdd vdd pch w=8u l=1u
Vdd vdd 0 5
.end
";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.models.len(), 2);
        assert!(nl.models["nch"].nmos);
        assert!((nl.models["nch"].kp - 110e-6).abs() < 1e-12);
        assert!(!nl.models["pch"].nmos);
        match &nl.elements[0].kind {
            ElementKind::Mosfet { w, l, model, .. } => {
                assert_eq!(*w, 4e-6);
                assert_eq!(*l, 1e-6);
                assert_eq!(model, "nch");
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn parses_sources() {
        let deck =
            "* s\nV1 a 0 5\nV2 b 0 dc 3.3\nI1 c 0 pwl(0 0 1n 1m)\nV3 d 0 sin(0 1 1meg)\n.end\n";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.elements.len(), 4);
        match &nl.elements[0].kind {
            ElementKind::VSource { wave, .. } => assert_eq!(wave.dc_value(), 5.0),
            _ => panic!(),
        }
        match &nl.elements[2].kind {
            ElementKind::ISource {
                wave: Waveform::Pwl(p),
                ..
            } => assert_eq!(p.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_ac_card() {
        let nl = parse("* a\nR1 a 0 1k\n.ac dec 27 10meg 10g\n.end\n").unwrap();
        match &nl.analyses[0] {
            Analysis::AcDec {
                points_per_decade,
                fstart,
                fstop,
            } => {
                assert_eq!(*points_per_decade, 27);
                assert_eq!(*fstart, 1e7);
                assert_eq!(*fstop, 1e10);
            }
            other => panic!("wrong analysis {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("* t\nR1 a b\n.end\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("* t\nQ1 a b c\n.end\n").unwrap_err();
        assert!(e.message.contains("unsupported"));
    }

    #[test]
    fn value_errors_carry_columns() {
        // `abc` starts at column 8 of `R1 a b abc`.
        let e = parse("* t\nR1 a b abc\n.end\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 8);
        assert!(e.to_string().starts_with("line 2, col 8:"));
        // Card-level errors have no column and omit it from the message.
        let e = parse("* t\nR1 a b\n.end\n").unwrap_err();
        assert_eq!(e.col, 0);
        assert!(e.to_string().starts_with("line 2:"));
    }

    #[test]
    fn duplicate_subckt_definition_is_error() {
        let deck = "\
* t
.subckt cell a b
R1 a b 1k
.ends
.subckt cell a b
R1 a b 2k
.ends
.end
";
        let e = parse(deck).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("duplicate .subckt definition `cell`"));
    }

    #[test]
    fn unterminated_subckt_reports_opening_line() {
        let e = parse("* t\nR1 a 0 1k\n.subckt cell a b\nR2 a b 1k\n.end\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn ignores_unknown_dot_cards_and_comments() {
        let deck = "* t\n.options post\nR1 a 0 1k $ load\n* comment\n.print v(a)\n.end\n";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.elements.len(), 1);
    }

    #[test]
    fn first_line_card_not_swallowed() {
        let nl = parse("R1 a 0 1k\n.end\n").unwrap();
        assert_eq!(nl.elements.len(), 1);
        assert!(nl.title.is_empty());
    }

    #[test]
    fn parses_inductor_and_controlled_sources() {
        let deck = "\
* rich
L1 a b 10n
E1 p 0 cp cn 2.5
G1 q 0 cp cn 1m
Vref s 0 1
F1 r 0 Vref 3
H1 t 0 Vref 50
.end
";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.elements.len(), 6);
        match &nl.elements[0].kind {
            ElementKind::Inductor { henries, .. } => assert!((henries - 10e-9).abs() < 1e-21),
            other => panic!("wrong kind {other:?}"),
        }
        match &nl.elements[1].kind {
            ElementKind::Vcvs { gain, cp, .. } => {
                assert_eq!(*gain, 2.5);
                assert_eq!(cp, "cp");
            }
            other => panic!("wrong kind {other:?}"),
        }
        match &nl.elements[2].kind {
            ElementKind::Vccs { gm, .. } => assert!((gm - 1e-3).abs() < 1e-15),
            other => panic!("wrong kind {other:?}"),
        }
        match &nl.elements[4].kind {
            ElementKind::Cccs { ctrl, gain, .. } => {
                assert_eq!(ctrl, "Vref");
                assert_eq!(*gain, 3.0);
            }
            other => panic!("wrong kind {other:?}"),
        }
        match &nl.elements[5].kind {
            ElementKind::Ccvs { ohms, .. } => assert_eq!(*ohms, 50.0),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn parses_diode_and_model() {
        let deck = "\
* d
.model dclamp d (is=2e-15 n=1.1 cj0=10f)
D1 a 0 dclamp
D2 b 0 dclamp area=4
.end
";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.diode_models.len(), 1);
        let m = &nl.diode_models["dclamp"];
        assert!((m.is - 2e-15).abs() < 1e-27);
        assert!((m.n - 1.1).abs() < 1e-12);
        assert!((m.cj0 - 10e-15).abs() < 1e-27);
        match &nl.elements[1].kind {
            ElementKind::Diode { area, model, .. } => {
                assert_eq!(*area, 4.0);
                assert_eq!(model, "dclamp");
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn duplicate_model_is_error_with_column() {
        let deck = "* t\n.model nch nmos()\n.model nch nmos (kp=50u)\n.end\n";
        let e = parse(deck).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.col > 0, "duplicate model should be column-attributed");
        assert!(e.message.contains("duplicate .model definition `nch`"));
        // Cross-namespace duplicates are caught too.
        let deck = "* t\n.model x nmos()\n.model x d()\n.end\n";
        let e = parse(deck).unwrap_err();
        assert!(e.message.contains("duplicate .model definition `x`"));
    }

    #[test]
    fn parses_dc_sweep_and_print() {
        let deck = "* t\nV1 a 0 1\nR1 a 0 1k\n.dc V1 0 5 0.5\n.print tran v(a) i(v1)\n.end\n";
        let nl = parse(deck).unwrap();
        match &nl.analyses[0] {
            Analysis::DcSweep {
                source,
                start,
                stop,
                step,
            } => {
                assert_eq!(source, "V1");
                assert_eq!((*start, *stop, *step), (0.0, 5.0, 0.5));
            }
            other => panic!("wrong analysis {other:?}"),
        }
        match &nl.analyses[1] {
            Analysis::Print { analysis, vars } => {
                assert_eq!(analysis, "tran");
                assert_eq!(vars, &["v(a)".to_owned(), "i(v1)".to_owned()]);
            }
            other => panic!("wrong analysis {other:?}"),
        }
        // Bad sweep steps are rejected with a column.
        let e = parse("* t\nV1 a 0 1\n.dc V1 0 5 -1\n.end\n").unwrap_err();
        assert!(e.message.contains("cannot reach"));
        assert!(e.col > 0);
    }

    #[test]
    fn controlled_source_diagnostics_carry_position() {
        // F referencing a non-V element: column of the bad token.
        let e = parse("* t\nF1 a 0 R9 2\n.end\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 8);
        assert!(e.message.contains("must be a voltage source"));
        // Truncated E card: card-level error.
        let e = parse("* t\nE1 a 0 cp\n.end\n").unwrap_err();
        assert_eq!(e.col, 0);
        assert!(e.message.contains("controlled source"));
        // Bad inductance value: column of the value token.
        let e = parse("* t\nL1 a b x10\n.end\n").unwrap_err();
        assert_eq!(e.col, 8);
    }

    #[test]
    fn new_elements_flatten_through_subckts() {
        let deck = "\
* nest
.subckt tank a b
L1 a mid 5n
R1 mid b 10
Vsense mid 0 0
F1 a 0 Vsense 2
.ends
.subckt pair x y
Xt1 x y tank
Xt2 y x tank
.ends
X1 top bot pair
.end
";
        let nl = parse(deck).unwrap().flatten().unwrap();
        // Two tanks, four elements each.
        assert_eq!(nl.elements.len(), 8);
        // The F control reference follows the flattened V-source name.
        let f = nl
            .elements
            .iter()
            .find(|e| e.name.to_ascii_lowercase().starts_with("f1.x1.xt1"))
            .expect("flattened F1 in first tank");
        match &f.kind {
            ElementKind::Cccs { ctrl, .. } => {
                assert!(
                    ctrl.to_ascii_lowercase().starts_with("vsense.x1.xt1"),
                    "control must follow the local V source: {ctrl}"
                );
            }
            other => panic!("wrong kind {other:?}"),
        }
        // Internal nodes are path-scoped per instance.
        let l = nl
            .elements
            .iter()
            .find(|e| e.name.to_ascii_lowercase().starts_with("l1.x1.xt2"))
            .unwrap();
        assert!(l.nodes().iter().any(|n| n.contains("x1.xt2.mid")));
    }

    #[test]
    fn writer_parser_roundtrip() {
        let deck = "\
* roundtrip
.model nch nmos (vto=0.7 kp=110u lambda=0.04 cox=3.45m cjb=0.4n)
R1 in out 250
C1 out 0 1.35p
M1 out in 0 0 nch w=4u l=1u
V1 in 0 pulse(0 5 0 1n 1n 3n 10n)
.tran 10p 5n
.end
";
        let nl = parse(deck).unwrap();
        let text = nl.to_string();
        let nl2 = parse(&text).unwrap();
        assert_eq!(nl.elements.len(), nl2.elements.len());
        assert_eq!(nl.models.len(), nl2.models.len());
        assert_eq!(nl.analyses, nl2.analyses);
        // Values survive the round trip.
        for (a, b) in nl.elements.iter().zip(&nl2.elements) {
            match (&a.kind, &b.kind) {
                (ElementKind::Resistor { ohms: x, .. }, ElementKind::Resistor { ohms: y, .. }) => {
                    assert!((x - y).abs() < 1e-9 * x.abs())
                }
                (
                    ElementKind::Capacitor { farads: x, .. },
                    ElementKind::Capacitor { farads: y, .. },
                ) => assert!((x - y).abs() < 1e-9 * x.abs()),
                _ => {}
            }
        }
    }
}
