//! SPICE deck parser: the "input parser" box of RCFIT's flowchart.
//!
//! Supports the element cards the paper's examples need (R, C, M, V, I),
//! `.MODEL` for level-1 MOSFETs, `.TRAN`/`.AC` analyses, comments (`*`),
//! line continuations (`+`) and case-insensitive keywords with
//! engineering-unit values.

use std::collections::BTreeMap;

use crate::ast::{
    Analysis, Element, ElementKind, MosModel, Netlist, Subckt, SubcktInstance, Waveform,
};
use crate::units::parse_value;

/// Error from parsing a SPICE deck, with 1-based line information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseNetlistError {
    /// 1-based source line of the offending card.
    pub line: usize,
    /// 1-based column of the offending token within that line, or 0 when
    /// the error applies to the card as a whole.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.col > 0 {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseNetlistError {}

/// Parses a SPICE deck from text.
///
/// The first line is the title (SPICE convention). Unknown dot-cards are
/// ignored with no error (HSPICE compatibility); unknown element letters
/// are an error.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending line on malformed
/// cards.
///
/// ```
/// use pact_netlist::parse;
/// let deck = "* rc line\nR1 in out 250\nC1 out 0 1.35p\n.end\n";
/// let nl = parse(deck)?;
/// assert_eq!(nl.elements.len(), 2);
/// # Ok::<(), pact_netlist::ParseNetlistError>(())
/// ```
pub fn parse(text: &str) -> Result<Netlist, ParseNetlistError> {
    // Join continuation lines, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if let Some(rest) = line.trim_start().strip_prefix('+') {
            if let Some(last) = logical.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest);
                continue;
            }
        }
        logical.push((idx + 1, line.to_owned()));
    }

    let mut nl = Netlist::default();
    // Subcircuit scope: while inside `.subckt … .ends`, cards land in a
    // scratch netlist that becomes the definition body. The line number of
    // the opening `.subckt` card rides along for error attribution.
    let mut subckt_stack: Vec<(usize, Subckt, Netlist)> = Vec::new();
    let mut first = true;
    for (lineno, line) in logical {
        let trimmed = line.trim();
        if first {
            first = false;
            // Title line (may be empty or a comment).
            nl.title = trimmed.trim_start_matches('*').trim().to_owned();
            // But some decks start immediately with a card; detect that.
            if !looks_like_card(trimmed) {
                continue;
            }
            nl.title.clear();
        }
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        // Strip trailing `$`-style comments.
        let body = match trimmed.find('$') {
            Some(pos) => trimmed[..pos].trim_end(),
            None => trimmed,
        };
        if body.is_empty() {
            continue;
        }
        // Subcircuit scope transitions.
        let lower = body.to_ascii_lowercase();
        if lower.starts_with(".subckt") {
            let toks: Vec<&str> = body.split_whitespace().collect();
            if toks.len() < 2 {
                return Err(err(lineno, ".subckt needs a name"));
            }
            subckt_stack.push((
                lineno,
                Subckt {
                    name: toks[1].to_ascii_lowercase(),
                    ports: toks[2..].iter().map(|t| (*t).to_owned()).collect(),
                    elements: Vec::new(),
                    instances: Vec::new(),
                },
                Netlist::default(),
            ));
            continue;
        }
        if lower.starts_with(".ends") {
            let (def_line, mut def, scope) = subckt_stack
                .pop()
                .ok_or_else(|| err(lineno, ".ends without matching .subckt"))?;
            def.elements = scope.elements;
            def.instances = scope.instances;
            // Models declared inside a subckt are hoisted to global scope
            // (HSPICE semantics for our purposes). Definitions always
            // register globally, even when nested.
            nl.models.extend(scope.models);
            if nl.subckts.contains_key(&def.name) {
                return Err(err(
                    def_line,
                    format!("duplicate .subckt definition `{}`", def.name),
                ));
            }
            nl.subckts.insert(def.name.clone(), def);
            continue;
        }
        let target = match subckt_stack.last_mut() {
            Some((_, _, scope)) => scope,
            None => &mut nl,
        };
        parse_card(body, lineno, target)?;
    }
    if let Some((def_line, def, _)) = subckt_stack.last() {
        return Err(err(
            *def_line,
            format!("unterminated .subckt `{}`", def.name),
        ));
    }
    Ok(nl)
}

fn looks_like_card(line: &str) -> bool {
    let lower = line.to_ascii_lowercase();
    let first = lower.chars().next().unwrap_or(' ');
    matches!(first, 'r' | 'c' | 'm' | 'v' | 'i' | 'x' | '.')
        && lower.split_whitespace().count() >= 2
}

fn err(line: usize, message: impl Into<String>) -> ParseNetlistError {
    ParseNetlistError {
        line,
        col: 0,
        message: message.into(),
    }
}

fn err_at(line: usize, col: usize, message: impl Into<String>) -> ParseNetlistError {
    ParseNetlistError {
        line,
        col,
        message: message.into(),
    }
}

/// 1-based column of `token`'s first occurrence in the original card body.
///
/// Tokenization happens on a copy with `(`/`)`/`=` padded out, so token
/// positions in the token stream do not map back to source columns; the
/// token *text* is unchanged, though, so a substring search on the
/// original body recovers the column. Returns 0 (unknown) if the token
/// cannot be located.
fn col_of(body: &str, token: &str) -> usize {
    body.find(token).map(|p| p + 1).unwrap_or(0)
}

fn parse_card(body: &str, line: usize, nl: &mut Netlist) -> Result<(), ParseNetlistError> {
    // Normalize parentheses into separate tokens for PULSE(...) forms.
    let spaced = body
        .replace('(', " ( ")
        .replace(')', " ) ")
        .replace('=', " = ");
    let tokens: Vec<&str> = spaced.split_whitespace().collect();
    if tokens.is_empty() {
        return Ok(());
    }
    let head = tokens[0].to_ascii_lowercase();
    match head.chars().next().unwrap() {
        '.' => parse_dot_card(&head, &tokens, body, line, nl),
        'r' => {
            let (a, b, v) = two_node_value(&tokens, body, line)?;
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind: ElementKind::Resistor { a, b, ohms: v },
            });
            Ok(())
        }
        'c' => {
            let (a, b, v) = two_node_value(&tokens, body, line)?;
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind: ElementKind::Capacitor { a, b, farads: v },
            });
            Ok(())
        }
        'm' => parse_mosfet(&tokens, body, line, nl),
        'x' => {
            if tokens.len() < 3 {
                return Err(err(line, "expected `Xname node... subckt`"));
            }
            nl.instances.push(SubcktInstance {
                name: tokens[0].to_owned(),
                nodes: tokens[1..tokens.len() - 1]
                    .iter()
                    .map(|t| (*t).to_owned())
                    .collect(),
                subckt: tokens[tokens.len() - 1].to_ascii_lowercase(),
            });
            Ok(())
        }
        'v' | 'i' => {
            let wave = parse_waveform(&tokens[3..], body, line)?;
            let kind = if head.starts_with('v') {
                ElementKind::VSource {
                    p: tokens[1].to_owned(),
                    n: tokens[2].to_owned(),
                    wave,
                }
            } else {
                ElementKind::ISource {
                    p: tokens[1].to_owned(),
                    n: tokens[2].to_owned(),
                    wave,
                }
            };
            nl.elements.push(Element {
                name: tokens[0].to_owned(),
                kind,
            });
            Ok(())
        }
        other => Err(err(line, format!("unsupported element type `{other}`"))),
    }
}

fn two_node_value(
    tokens: &[&str],
    body: &str,
    line: usize,
) -> Result<(String, String, f64), ParseNetlistError> {
    if tokens.len() < 4 {
        return Err(err(line, "expected `NAME node1 node2 value`"));
    }
    let v =
        parse_value(tokens[3]).map_err(|e| err_at(line, col_of(body, tokens[3]), e.to_string()))?;
    Ok((tokens[1].to_owned(), tokens[2].to_owned(), v))
}

fn parse_mosfet(
    tokens: &[&str],
    body: &str,
    line: usize,
    nl: &mut Netlist,
) -> Result<(), ParseNetlistError> {
    if tokens.len() < 6 {
        return Err(err(line, "expected `Mname d g s b model [w= l=]`"));
    }
    let mut w = 10e-6;
    let mut l = 1e-6;
    let mut i = 6;
    while i < tokens.len() {
        let key = tokens[i].to_ascii_lowercase();
        if (key == "w" || key == "l") && i + 2 < tokens.len() && tokens[i + 1] == "=" {
            let v = parse_value(tokens[i + 2])
                .map_err(|e| err_at(line, col_of(body, tokens[i + 2]), e.to_string()))?;
            if key == "w" {
                w = v;
            } else {
                l = v;
            }
            i += 3;
        } else if let Some(eqpos) = key.find('=') {
            // w=10u glued form survives `=` spacing replacement only when
            // the token had no `=`; handle defensively.
            let (k, v) = key.split_at(eqpos);
            let v = parse_value(&v[1..])
                .map_err(|e| err_at(line, col_of(body, tokens[i]), e.to_string()))?;
            match k {
                "w" => w = v,
                "l" => l = v,
                _ => {}
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    nl.elements.push(Element {
        name: tokens[0].to_owned(),
        kind: ElementKind::Mosfet {
            d: tokens[1].to_owned(),
            g: tokens[2].to_owned(),
            s: tokens[3].to_owned(),
            b: tokens[4].to_owned(),
            model: tokens[5].to_ascii_lowercase(),
            w,
            l,
        },
    });
    Ok(())
}

fn parse_waveform(tokens: &[&str], body: &str, line: usize) -> Result<Waveform, ParseNetlistError> {
    if tokens.is_empty() {
        return Ok(Waveform::Dc(0.0));
    }
    let head = tokens[0].to_ascii_lowercase();
    match head.as_str() {
        "dc" => {
            let v = tokens
                .get(1)
                .ok_or_else(|| err(line, "dc needs a value"))
                .and_then(|t| {
                    parse_value(t).map_err(|e| err_at(line, col_of(body, t), e.to_string()))
                })?;
            Ok(Waveform::Dc(v))
        }
        "pulse" => {
            let vals = numeric_args(&tokens[1..], body, line)?;
            if vals.len() < 2 {
                return Err(err(line, "pulse needs at least v1 v2"));
            }
            let get = |i: usize, d: f64| vals.get(i).copied().unwrap_or(d);
            Ok(Waveform::Pulse {
                v1: vals[0],
                v2: vals[1],
                td: get(2, 0.0),
                tr: get(3, 0.0),
                tf: get(4, 0.0),
                pw: get(5, f64::INFINITY),
                per: get(6, 0.0),
            })
        }
        "pwl" => {
            let vals = numeric_args(&tokens[1..], body, line)?;
            if vals.len() % 2 != 0 {
                return Err(err(line, "pwl needs time/value pairs"));
            }
            let pts: Vec<(f64, f64)> = vals.chunks(2).map(|c| (c[0], c[1])).collect();
            for w in pts.windows(2) {
                if w[1].0 < w[0].0 {
                    return Err(err(line, "pwl times must be non-decreasing"));
                }
            }
            Ok(Waveform::Pwl(pts))
        }
        "sin" => {
            let vals = numeric_args(&tokens[1..], body, line)?;
            if vals.len() < 3 {
                return Err(err(line, "sin needs vo va freq"));
            }
            Ok(Waveform::Sin {
                vo: vals[0],
                va: vals[1],
                freq: vals[2],
            })
        }
        _ => {
            // Bare value: `V1 a 0 5`.
            let v = parse_value(tokens[0])
                .map_err(|e| err_at(line, col_of(body, tokens[0]), e.to_string()))?;
            Ok(Waveform::Dc(v))
        }
    }
}

fn numeric_args(tokens: &[&str], body: &str, line: usize) -> Result<Vec<f64>, ParseNetlistError> {
    let mut out = Vec::new();
    for t in tokens {
        if *t == "(" || *t == ")" {
            continue;
        }
        out.push(parse_value(t).map_err(|e| err_at(line, col_of(body, t), e.to_string()))?);
    }
    Ok(out)
}

fn parse_dot_card(
    head: &str,
    tokens: &[&str],
    body: &str,
    line: usize,
    nl: &mut Netlist,
) -> Result<(), ParseNetlistError> {
    match head {
        ".model" => {
            if tokens.len() < 3 {
                return Err(err(line, ".model needs name and type"));
            }
            let name = tokens[1].to_ascii_lowercase();
            let kind = tokens[2].to_ascii_lowercase();
            let mut model = match kind.as_str() {
                "nmos" => MosModel::default_nmos(name.clone()),
                "pmos" => MosModel::default_pmos(name.clone()),
                other => {
                    return Err(err_at(
                        line,
                        col_of(body, tokens[2]),
                        format!("unsupported model type `{other}`"),
                    ))
                }
            };
            // key = value pairs (already `=`-spaced).
            let params = collect_params(&tokens[3..], body, line)?;
            for (k, v) in params {
                match k.as_str() {
                    "vto" | "vt0" => model.vto = v,
                    "kp" => model.kp = v,
                    "lambda" => model.lambda = v,
                    "cox" => model.cox = v,
                    "cjb" => model.cjb = v,
                    _ => {} // ignore unknown parameters (HSPICE decks carry many)
                }
            }
            nl.models.insert(model.name.clone(), model);
            Ok(())
        }
        ".tran" => {
            let vals = numeric_args(&tokens[1..], body, line)?;
            if vals.len() < 2 {
                return Err(err(line, ".tran needs tstep tstop"));
            }
            nl.analyses.push(Analysis::Tran {
                tstep: vals[0],
                tstop: vals[1],
            });
            Ok(())
        }
        ".ac" => {
            if tokens.len() < 5 || !tokens[1].eq_ignore_ascii_case("dec") {
                return Err(err(line, ".ac supports `dec n fstart fstop`"));
            }
            let n: usize = tokens[2]
                .parse()
                .map_err(|_| err_at(line, col_of(body, tokens[2]), "invalid point count"))?;
            let fstart = parse_value(tokens[3])
                .map_err(|e| err_at(line, col_of(body, tokens[3]), e.to_string()))?;
            let fstop = parse_value(tokens[4])
                .map_err(|e| err_at(line, col_of(body, tokens[4]), e.to_string()))?;
            nl.analyses.push(Analysis::AcDec {
                points_per_decade: n,
                fstart,
                fstop,
            });
            Ok(())
        }
        ".end" => Ok(()),
        _ => Ok(()), // ignore .options, .print, .probe, ...
    }
}

fn collect_params(
    tokens: &[&str],
    body: &str,
    line: usize,
) -> Result<BTreeMap<String, f64>, ParseNetlistError> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = tokens[i];
        if t == "(" || t == ")" {
            i += 1;
            continue;
        }
        if i + 2 < tokens.len() && tokens[i + 1] == "=" {
            let v = parse_value(tokens[i + 2])
                .map_err(|e| err_at(line, col_of(body, tokens[i + 2]), e.to_string()))?;
            out.insert(t.to_ascii_lowercase(), v);
            i += 3;
        } else if i + 2 == tokens.len() && tokens[i + 1] == "=" {
            return Err(err_at(
                line,
                col_of(body, t),
                format!("parameter `{t}` missing value"),
            ));
        } else {
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rc_deck() {
        let deck = "\
* simple rc
R1 in mid 125
R2 mid out 125
Cl mid 0 1.35p
C2 out 0 0.5pF
.tran 10p 5n
.end
";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.title, "simple rc");
        assert_eq!(nl.elements.len(), 4);
        match &nl.elements[2].kind {
            ElementKind::Capacitor { farads, .. } => assert!((*farads - 1.35e-12).abs() < 1e-24),
            other => panic!("wrong kind {other:?}"),
        }
        assert_eq!(nl.analyses.len(), 1);
    }

    #[test]
    fn continuation_lines_join() {
        let deck = "* t\nV1 in 0 pulse(0 5\n+ 0 1n 1n 3n 10n)\n.end\n";
        let nl = parse(deck).unwrap();
        match &nl.elements[0].kind {
            ElementKind::VSource {
                wave: Waveform::Pulse { v2, per, .. },
                ..
            } => {
                assert_eq!(*v2, 5.0);
                assert_eq!(*per, 10e-9);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn parses_mosfet_and_model() {
        let deck = "\
* inv
.model nch nmos (vto=0.7 kp=110u lambda=0.04)
.model pch pmos (vto=-0.9 kp=40u)
M1 out in 0 0 nch w=4u l=1u
M2 out in vdd vdd pch w=8u l=1u
Vdd vdd 0 5
.end
";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.models.len(), 2);
        assert!(nl.models["nch"].nmos);
        assert!((nl.models["nch"].kp - 110e-6).abs() < 1e-12);
        assert!(!nl.models["pch"].nmos);
        match &nl.elements[0].kind {
            ElementKind::Mosfet { w, l, model, .. } => {
                assert_eq!(*w, 4e-6);
                assert_eq!(*l, 1e-6);
                assert_eq!(model, "nch");
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn parses_sources() {
        let deck =
            "* s\nV1 a 0 5\nV2 b 0 dc 3.3\nI1 c 0 pwl(0 0 1n 1m)\nV3 d 0 sin(0 1 1meg)\n.end\n";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.elements.len(), 4);
        match &nl.elements[0].kind {
            ElementKind::VSource { wave, .. } => assert_eq!(wave.dc_value(), 5.0),
            _ => panic!(),
        }
        match &nl.elements[2].kind {
            ElementKind::ISource {
                wave: Waveform::Pwl(p),
                ..
            } => assert_eq!(p.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_ac_card() {
        let nl = parse("* a\nR1 a 0 1k\n.ac dec 27 10meg 10g\n.end\n").unwrap();
        match &nl.analyses[0] {
            Analysis::AcDec {
                points_per_decade,
                fstart,
                fstop,
            } => {
                assert_eq!(*points_per_decade, 27);
                assert_eq!(*fstart, 1e7);
                assert_eq!(*fstop, 1e10);
            }
            other => panic!("wrong analysis {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("* t\nR1 a b\n.end\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("* t\nQ1 a b c\n.end\n").unwrap_err();
        assert!(e.message.contains("unsupported"));
    }

    #[test]
    fn value_errors_carry_columns() {
        // `abc` starts at column 8 of `R1 a b abc`.
        let e = parse("* t\nR1 a b abc\n.end\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 8);
        assert!(e.to_string().starts_with("line 2, col 8:"));
        // Card-level errors have no column and omit it from the message.
        let e = parse("* t\nR1 a b\n.end\n").unwrap_err();
        assert_eq!(e.col, 0);
        assert!(e.to_string().starts_with("line 2:"));
    }

    #[test]
    fn duplicate_subckt_definition_is_error() {
        let deck = "\
* t
.subckt cell a b
R1 a b 1k
.ends
.subckt cell a b
R1 a b 2k
.ends
.end
";
        let e = parse(deck).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("duplicate .subckt definition `cell`"));
    }

    #[test]
    fn unterminated_subckt_reports_opening_line() {
        let e = parse("* t\nR1 a 0 1k\n.subckt cell a b\nR2 a b 1k\n.end\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn ignores_unknown_dot_cards_and_comments() {
        let deck = "* t\n.options post\nR1 a 0 1k $ load\n* comment\n.print v(a)\n.end\n";
        let nl = parse(deck).unwrap();
        assert_eq!(nl.elements.len(), 1);
    }

    #[test]
    fn first_line_card_not_swallowed() {
        let nl = parse("R1 a 0 1k\n.end\n").unwrap();
        assert_eq!(nl.elements.len(), 1);
        assert!(nl.title.is_empty());
    }

    #[test]
    fn writer_parser_roundtrip() {
        let deck = "\
* roundtrip
.model nch nmos (vto=0.7 kp=110u lambda=0.04 cox=3.45m cjb=0.4n)
R1 in out 250
C1 out 0 1.35p
M1 out in 0 0 nch w=4u l=1u
V1 in 0 pulse(0 5 0 1n 1n 3n 10n)
.tran 10p 5n
.end
";
        let nl = parse(deck).unwrap();
        let text = nl.to_string();
        let nl2 = parse(&text).unwrap();
        assert_eq!(nl.elements.len(), nl2.elements.len());
        assert_eq!(nl.models.len(), nl2.models.len());
        assert_eq!(nl.analyses, nl2.analyses);
        // Values survive the round trip.
        for (a, b) in nl.elements.iter().zip(&nl2.elements) {
            match (&a.kind, &b.kind) {
                (ElementKind::Resistor { ohms: x, .. }, ElementKind::Resistor { ohms: y, .. }) => {
                    assert!((x - y).abs() < 1e-9 * x.abs())
                }
                (
                    ElementKind::Capacitor { farads: x, .. },
                    ElementKind::Capacitor { farads: y, .. },
                ) => assert!((x - y).abs() < 1e-9 * x.abs()),
                _ => {}
            }
        }
    }
}
