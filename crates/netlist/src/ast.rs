//! Netlist data model: elements, source waveforms, device models and
//! analysis cards, plus the SPICE writer.

use std::collections::BTreeMap;
use std::fmt;

use crate::units::format_value;

/// A parsed SPICE deck.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Netlist {
    /// First line of the deck (SPICE treats it as a title).
    pub title: String,
    /// Circuit elements in deck order.
    pub elements: Vec<Element>,
    /// MOSFET `.MODEL` cards by model name (lower-cased).
    pub models: BTreeMap<String, MosModel>,
    /// Diode `.MODEL` cards by model name (lower-cased).
    pub diode_models: BTreeMap<String, DiodeModel>,
    /// `.TRAN`/`.AC`/`.DC`/`.PRINT` analysis requests.
    pub analyses: Vec<Analysis>,
    /// `.SUBCKT` definitions by lower-cased name; expand instances with
    /// [`Netlist::flatten`].
    pub subckts: BTreeMap<String, Subckt>,
    /// Unexpanded subcircuit instances (`X` cards); consumed by
    /// [`Netlist::flatten`].
    pub instances: Vec<SubcktInstance>,
}

impl Netlist {
    /// An empty netlist with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        Netlist {
            title: title.into(),
            ..Netlist::default()
        }
    }

    /// All node names referenced by any element, excluding ground.
    pub fn node_names(&self) -> Vec<String> {
        let mut set = std::collections::BTreeSet::new();
        for e in &self.elements {
            for n in e.nodes() {
                if !is_ground(&n) {
                    set.insert(n);
                }
            }
        }
        set.into_iter().collect()
    }

    /// Counts elements by a predicate (used for table statistics).
    pub fn count(&self, pred: impl Fn(&Element) -> bool) -> usize {
        self.elements.iter().filter(|e| pred(e)).count()
    }

    /// Element names (lower-cased) used by more than one card, with their
    /// use counts, in sorted name order. SPICE semantics stamp duplicate
    /// cards cumulatively, which is usually an extraction bug worth
    /// flagging — callers surface these as warnings.
    pub fn duplicate_element_names(&self) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for e in &self.elements {
            *counts.entry(e.name.to_ascii_lowercase()).or_insert(0) += 1;
        }
        counts.into_iter().filter(|(_, c)| *c > 1).collect()
    }

    /// Expands every subcircuit instance into flat elements.
    ///
    /// Instance-internal nodes are renamed `<instance-path>.<node>`;
    /// nodes bound to instance terminals take the caller's names, so
    /// hierarchical decks flatten into ordinary flat netlists (ground
    /// passes through untouched). Nesting is supported to depth 50.
    ///
    /// # Errors
    ///
    /// See [`FlattenError`].
    pub fn flatten(&self) -> Result<Netlist, FlattenError> {
        let mut out = Netlist {
            title: self.title.clone(),
            elements: self.elements.clone(),
            models: self.models.clone(),
            diode_models: self.diode_models.clone(),
            analyses: self.analyses.clone(),
            subckts: BTreeMap::new(),
            instances: Vec::new(),
        };
        for inst in &self.instances {
            expand_instance(
                inst,
                &self.subckts,
                &inst.name.to_ascii_lowercase(),
                0,
                &mut out,
            )?;
        }
        Ok(out)
    }
}

/// Recursively expands one instance into `out`.
fn expand_instance(
    inst: &SubcktInstance,
    defs: &BTreeMap<String, Subckt>,
    path: &str,
    depth: usize,
    out: &mut Netlist,
) -> Result<(), FlattenError> {
    if depth > 50 {
        return Err(FlattenError::TooDeep {
            instance: path.to_owned(),
        });
    }
    let def = defs
        .get(&inst.subckt)
        .ok_or_else(|| FlattenError::UnknownSubckt {
            instance: path.to_owned(),
            subckt: inst.subckt.clone(),
        })?;
    if def.ports.len() != inst.nodes.len() {
        return Err(FlattenError::PortMismatch {
            instance: path.to_owned(),
            expected: def.ports.len(),
            got: inst.nodes.len(),
        });
    }
    let map_node = |name: &str| -> String {
        if is_ground(name) {
            return name.to_owned();
        }
        if let Some(pos) = def.ports.iter().position(|p| p.eq_ignore_ascii_case(name)) {
            return inst.nodes[pos].clone();
        }
        format!("{path}.{name}")
    };
    // Element names local to this body: current-controlled sources (F/H)
    // that reference one of them must follow its flattened name; a name
    // not defined here is a global (deck-level) reference and passes
    // through untouched.
    let local_names: std::collections::BTreeSet<String> = def
        .elements
        .iter()
        .map(|e| e.name.to_ascii_lowercase())
        .collect();
    let map_ctrl = |ctrl: &str| -> String {
        if local_names.contains(&ctrl.to_ascii_lowercase()) {
            format!("{ctrl}.{path}")
        } else {
            ctrl.to_owned()
        }
    };
    for e in &def.elements {
        let mut e2 = e.clone();
        e2.name = format!("{}.{path}", e.name);
        match &mut e2.kind {
            ElementKind::Resistor { a, b, .. }
            | ElementKind::Capacitor { a, b, .. }
            | ElementKind::Inductor { a, b, .. } => {
                *a = map_node(a);
                *b = map_node(b);
            }
            ElementKind::Mosfet { d, g, s, b, .. } => {
                *d = map_node(d);
                *g = map_node(g);
                *s = map_node(s);
                *b = map_node(b);
            }
            ElementKind::VSource { p, n, .. }
            | ElementKind::ISource { p, n, .. }
            | ElementKind::Diode { p, n, .. } => {
                *p = map_node(p);
                *n = map_node(n);
            }
            ElementKind::Vcvs { p, n, cp, cn, .. } | ElementKind::Vccs { p, n, cp, cn, .. } => {
                *p = map_node(p);
                *n = map_node(n);
                *cp = map_node(cp);
                *cn = map_node(cn);
            }
            ElementKind::Cccs { p, n, ctrl, .. } | ElementKind::Ccvs { p, n, ctrl, .. } => {
                *p = map_node(p);
                *n = map_node(n);
                *ctrl = map_ctrl(ctrl);
            }
        }
        out.elements.push(e2);
    }
    for nested in &def.instances {
        let nested_bound = SubcktInstance {
            name: nested.name.clone(),
            nodes: nested.nodes.iter().map(|n| map_node(n)).collect(),
            subckt: nested.subckt.clone(),
        };
        let nested_path = format!("{path}.{}", nested.name.to_ascii_lowercase());
        expand_instance(&nested_bound, defs, &nested_path, depth + 1, out)?;
    }
    Ok(())
}

/// A `.SUBCKT` definition: named ports and a body of elements (which may
/// itself instantiate other subcircuits).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Subckt {
    /// Subcircuit name (lower-cased).
    pub name: String,
    /// Port node names in declaration order.
    pub ports: Vec<String>,
    /// Body elements (node names are subcircuit-local).
    pub elements: Vec<Element>,
    /// Nested instances inside the body.
    pub instances: Vec<SubcktInstance>,
}

/// An `X` card: a subcircuit instantiation.
#[derive(Clone, Debug, PartialEq)]
pub struct SubcktInstance {
    /// Instance name (`X1`, `Xcore`, …).
    pub name: String,
    /// Nodes bound to the subcircuit's ports, in order.
    pub nodes: Vec<String>,
    /// Referenced subcircuit name (lower-cased).
    pub subckt: String,
}

/// Error from flattening subcircuit instances.
#[derive(Clone, Debug, PartialEq)]
pub enum FlattenError {
    /// An instance references an undefined subcircuit.
    UnknownSubckt {
        /// Instance name.
        instance: String,
        /// Missing definition name.
        subckt: String,
    },
    /// Port count mismatch between instance and definition.
    PortMismatch {
        /// Instance name.
        instance: String,
        /// Ports the definition declares.
        expected: usize,
        /// Nodes the instance supplied.
        got: usize,
    },
    /// Instantiation recursion exceeded the depth limit (cyclic
    /// definitions).
    TooDeep {
        /// Instance path at which the limit was hit.
        instance: String,
    },
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenError::UnknownSubckt { instance, subckt } => {
                write!(
                    f,
                    "instance {instance} references unknown subckt `{subckt}`"
                )
            }
            FlattenError::PortMismatch {
                instance,
                expected,
                got,
            } => write!(
                f,
                "instance {instance} supplies {got} nodes, subckt declares {expected} ports"
            ),
            FlattenError::TooDeep { instance } => {
                write!(f, "subcircuit nesting too deep at {instance} (cycle?)")
            }
        }
    }
}

impl std::error::Error for FlattenError {}

/// `true` for the ground/common node spellings (`0`, `gnd`, `gnd!`).
pub fn is_ground(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n == "0" || n == "gnd" || n == "gnd!" || n == "vss!"
}

/// One circuit element card.
#[derive(Clone, Debug, PartialEq)]
pub struct Element {
    /// Element name including the leading type letter (`R12`, `CLOAD`, …).
    pub name: String,
    /// Device-specific data.
    pub kind: ElementKind,
}

impl Element {
    /// Creates a resistor element.
    pub fn resistor(
        name: impl Into<String>,
        a: impl Into<String>,
        b: impl Into<String>,
        ohms: f64,
    ) -> Self {
        Element {
            name: name.into(),
            kind: ElementKind::Resistor {
                a: a.into(),
                b: b.into(),
                ohms,
            },
        }
    }

    /// Creates a capacitor element.
    pub fn capacitor(
        name: impl Into<String>,
        a: impl Into<String>,
        b: impl Into<String>,
        farads: f64,
    ) -> Self {
        Element {
            name: name.into(),
            kind: ElementKind::Capacitor {
                a: a.into(),
                b: b.into(),
                farads,
            },
        }
    }

    /// The node names this element touches, in terminal order. For
    /// voltage/current-controlled sources the controlling node pair is
    /// included: sensing a node voltage pins that node just as a device
    /// terminal does (the extraction port rule relies on this).
    pub fn nodes(&self) -> Vec<String> {
        match &self.kind {
            ElementKind::Resistor { a, b, .. }
            | ElementKind::Capacitor { a, b, .. }
            | ElementKind::Inductor { a, b, .. } => {
                vec![a.clone(), b.clone()]
            }
            ElementKind::Mosfet { d, g, s, b, .. } => {
                vec![d.clone(), g.clone(), s.clone(), b.clone()]
            }
            ElementKind::VSource { p, n, .. }
            | ElementKind::ISource { p, n, .. }
            | ElementKind::Diode { p, n, .. }
            | ElementKind::Cccs { p, n, .. }
            | ElementKind::Ccvs { p, n, .. } => {
                vec![p.clone(), n.clone()]
            }
            ElementKind::Vcvs { p, n, cp, cn, .. } | ElementKind::Vccs { p, n, cp, cn, .. } => {
                vec![p.clone(), n.clone(), cp.clone(), cn.clone()]
            }
        }
    }

    /// `true` for resistors and capacitors — the elements PACT reduces.
    pub fn is_rc(&self) -> bool {
        matches!(
            self.kind,
            ElementKind::Resistor { .. } | ElementKind::Capacitor { .. }
        )
    }
}

/// Device-specific element payload.
#[derive(Clone, Debug, PartialEq)]
pub enum ElementKind {
    /// Two-terminal resistor (`ohms` may be negative in reduced netlists).
    Resistor {
        /// First terminal.
        a: String,
        /// Second terminal.
        b: String,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Two-terminal capacitor (`farads` may be negative in reduced
    /// netlists).
    Capacitor {
        /// First terminal.
        a: String,
        /// Second terminal.
        b: String,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Four-terminal MOSFET referencing a `.MODEL` card.
    Mosfet {
        /// Drain node.
        d: String,
        /// Gate node.
        g: String,
        /// Source node.
        s: String,
        /// Body/bulk node.
        b: String,
        /// Model name (lower-cased).
        model: String,
        /// Channel width in meters.
        w: f64,
        /// Channel length in meters.
        l: f64,
    },
    /// Independent voltage source.
    VSource {
        /// Positive terminal.
        p: String,
        /// Negative terminal.
        n: String,
        /// Drive waveform.
        wave: Waveform,
    },
    /// Independent current source (current flows from `p` through the
    /// source to `n`).
    ISource {
        /// Positive terminal.
        p: String,
        /// Negative terminal.
        n: String,
        /// Drive waveform.
        wave: Waveform,
    },
    /// Two-terminal inductor (`L` card).
    Inductor {
        /// First terminal.
        a: String,
        /// Second terminal.
        b: String,
        /// Inductance in henries.
        henries: f64,
    },
    /// Voltage-controlled voltage source (`E` card):
    /// `v(p) − v(n) = gain · (v(cp) − v(cn))`.
    Vcvs {
        /// Positive output terminal.
        p: String,
        /// Negative output terminal.
        n: String,
        /// Positive controlling node.
        cp: String,
        /// Negative controlling node.
        cn: String,
        /// Voltage gain (dimensionless).
        gain: f64,
    },
    /// Voltage-controlled current source (`G` card): current `gm ·
    /// (v(cp) − v(cn))` flows from `p` through the source to `n`.
    Vccs {
        /// Positive output terminal.
        p: String,
        /// Negative output terminal.
        n: String,
        /// Positive controlling node.
        cp: String,
        /// Negative controlling node.
        cn: String,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Current-controlled current source (`F` card): current `gain ·
    /// i(ctrl)` flows from `p` to `n`, where `ctrl` names a voltage
    /// source whose branch current is the control.
    Cccs {
        /// Positive output terminal.
        p: String,
        /// Negative output terminal.
        n: String,
        /// Name of the controlling voltage source.
        ctrl: String,
        /// Current gain (dimensionless).
        gain: f64,
    },
    /// Current-controlled voltage source (`H` card):
    /// `v(p) − v(n) = ohms · i(ctrl)`.
    Ccvs {
        /// Positive output terminal.
        p: String,
        /// Negative output terminal.
        n: String,
        /// Name of the controlling voltage source.
        ctrl: String,
        /// Transresistance in ohms.
        ohms: f64,
    },
    /// Junction diode (`D` card) referencing a `.MODEL <name> D` card.
    /// Anode is `p`, cathode is `n`.
    Diode {
        /// Anode.
        p: String,
        /// Cathode.
        n: String,
        /// Model name (lower-cased).
        model: String,
        /// Area scale factor (multiplies `IS` and `CJ0`).
        area: f64,
    },
}

/// Source waveform descriptions.
#[derive(Clone, Debug, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE `PULSE(v1 v2 td tr tf pw per)`.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge.
        td: f64,
        /// Rise time.
        tr: f64,
        /// Fall time.
        tf: f64,
        /// Pulse width.
        pw: f64,
        /// Period.
        per: f64,
    },
    /// Piecewise-linear `(time, value)` pairs, times strictly increasing.
    Pwl(Vec<(f64, f64)>),
    /// `SIN(vo va freq)`.
    Sin {
        /// Offset.
        vo: f64,
        /// Amplitude.
        va: f64,
        /// Frequency in Hz.
        freq: f64,
    },
}

impl Waveform {
    /// Waveform value at time `t` (transient semantics).
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                td,
                tr,
                tf,
                pw,
                per,
            } => {
                if t < *td {
                    return *v1;
                }
                let per = if *per > 0.0 { *per } else { f64::INFINITY };
                let tau = (t - td) % per;
                if tau < *tr {
                    if *tr == 0.0 {
                        *v2
                    } else {
                        v1 + (v2 - v1) * tau / tr
                    }
                } else if tau < tr + pw {
                    *v2
                } else if tau < tr + pw + tf {
                    if *tf == 0.0 {
                        *v1
                    } else {
                        v2 + (v1 - v2) * (tau - tr - pw) / tf
                    }
                } else {
                    *v1
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().unwrap().1
            }
            Waveform::Sin { vo, va, freq } => {
                vo + va * (2.0 * std::f64::consts::PI * freq * t).sin()
            }
        }
    }

    /// DC operating-point value (value at `t = 0`).
    pub fn dc_value(&self) -> f64 {
        self.eval(0.0)
    }

    /// Breakpoint times the transient integrator should land on exactly.
    pub fn breakpoints(&self, tstop: f64) -> Vec<f64> {
        match self {
            Waveform::Dc(_) | Waveform::Sin { .. } => Vec::new(),
            Waveform::Pulse {
                td,
                tr,
                tf,
                pw,
                per,
                ..
            } => {
                let mut out = Vec::new();
                let period = if *per > 0.0 { *per } else { f64::INFINITY };
                let mut base = *td;
                while base < tstop {
                    for point in [base, base + tr, base + tr + pw, base + tr + pw + tf] {
                        if point < tstop {
                            out.push(point);
                        }
                    }
                    if period.is_infinite() {
                        break;
                    }
                    base += period;
                }
                out
            }
            Waveform::Pwl(points) => points
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| t < tstop)
                .collect(),
        }
    }
}

/// Level-1 MOSFET model parameters (a Shichman–Hodges device).
#[derive(Clone, Debug, PartialEq)]
pub struct MosModel {
    /// Model name (lower-cased).
    pub name: String,
    /// `true` for NMOS, `false` for PMOS.
    pub nmos: bool,
    /// Zero-bias threshold voltage (positive for NMOS, negative for PMOS).
    pub vto: f64,
    /// Transconductance parameter `KP` in A/V².
    pub kp: f64,
    /// Channel-length modulation in 1/V.
    pub lambda: f64,
    /// Gate-oxide capacitance per area `COX'·W·L` proxy: gate cap per m²
    /// (F/m²).
    pub cox: f64,
    /// Drain/source-to-body junction capacitance per channel width (F/m).
    /// This is the substrate-noise injection path of the paper's adder
    /// example.
    pub cjb: f64,
}

impl MosModel {
    /// A generic 0.8 µm-era NMOS model.
    pub fn default_nmos(name: impl Into<String>) -> Self {
        MosModel {
            name: name.into(),
            nmos: true,
            vto: 0.7,
            kp: 110e-6,
            lambda: 0.04,
            cox: 3.45e-3,
            cjb: 0.4e-9,
        }
    }

    /// A generic 0.8 µm-era PMOS model.
    pub fn default_pmos(name: impl Into<String>) -> Self {
        MosModel {
            name: name.into(),
            nmos: false,
            vto: -0.9,
            kp: 40e-6,
            lambda: 0.05,
            cox: 3.45e-3,
            cjb: 0.4e-9,
        }
    }
}

/// Junction diode model parameters (a Shockley device with a fixed
/// junction capacitance).
#[derive(Clone, Debug, PartialEq)]
pub struct DiodeModel {
    /// Model name (lower-cased).
    pub name: String,
    /// Saturation current `IS` in amperes.
    pub is: f64,
    /// Emission coefficient `N` (ideality factor).
    pub n: f64,
    /// Zero-bias junction capacitance `CJ0` in farads.
    pub cj0: f64,
}

impl DiodeModel {
    /// A generic small-signal silicon diode.
    pub fn default_diode(name: impl Into<String>) -> Self {
        DiodeModel {
            name: name.into(),
            is: 1e-14,
            n: 1.0,
            cj0: 0.0,
        }
    }
}

/// Analysis request cards.
#[derive(Clone, Debug, PartialEq)]
pub enum Analysis {
    /// `.TRAN tstep tstop`.
    Tran {
        /// Suggested/print time step.
        tstep: f64,
        /// Stop time.
        tstop: f64,
    },
    /// `.AC DEC n fstart fstop` — logarithmic sweep.
    AcDec {
        /// Points per decade.
        points_per_decade: usize,
        /// Start frequency (Hz).
        fstart: f64,
        /// Stop frequency (Hz).
        fstop: f64,
    },
    /// `.DC src start stop step` — sweep an independent source's DC value
    /// and record the operating point at each step.
    DcSweep {
        /// Name of the swept V or I source.
        source: String,
        /// First swept value.
        start: f64,
        /// Last swept value (inclusive up to rounding).
        stop: f64,
        /// Sweep increment (sign must match `stop − start`).
        step: f64,
    },
    /// `.PRINT <analysis> v(node) …` — output request. The simulator
    /// treats these as the set of signals worth reporting; unknown
    /// variables are carried through verbatim.
    Print {
        /// Analysis the request applies to (`tran`, `ac`, `dc`).
        analysis: String,
        /// Requested output variables as written (e.g. `v(out)`).
        vars: Vec<String>,
    },
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "* {}", self.title)?;
        for m in self.models.values() {
            writeln!(
                f,
                ".model {} {} (vto={} kp={} lambda={} cox={} cjb={})",
                m.name,
                if m.nmos { "nmos" } else { "pmos" },
                format_value(m.vto),
                format_value(m.kp),
                format_value(m.lambda),
                format_value(m.cox),
                format_value(m.cjb)
            )?;
        }
        for m in self.diode_models.values() {
            writeln!(
                f,
                ".model {} d (is={} n={} cj0={})",
                m.name,
                format_value(m.is),
                format_value(m.n),
                format_value(m.cj0)
            )?;
        }
        for e in &self.elements {
            writeln!(f, "{e}")?;
        }
        for a in &self.analyses {
            match a {
                Analysis::Tran { tstep, tstop } => {
                    writeln!(f, ".tran {} {}", format_value(*tstep), format_value(*tstop))?;
                }
                Analysis::AcDec {
                    points_per_decade,
                    fstart,
                    fstop,
                } => writeln!(
                    f,
                    ".ac dec {points_per_decade} {} {}",
                    format_value(*fstart),
                    format_value(*fstop)
                )?,
                Analysis::DcSweep {
                    source,
                    start,
                    stop,
                    step,
                } => writeln!(
                    f,
                    ".dc {source} {} {} {}",
                    format_value(*start),
                    format_value(*stop),
                    format_value(*step)
                )?,
                Analysis::Print { analysis, vars } => {
                    write!(f, ".print {analysis}")?;
                    for v in vars {
                        write!(f, " {v}")?;
                    }
                    writeln!(f)?;
                }
            }
        }
        writeln!(f, ".end")
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ElementKind::Resistor { a, b, ohms } => {
                write!(f, "{} {} {} {}", self.name, a, b, format_value(*ohms))
            }
            ElementKind::Capacitor { a, b, farads } => {
                write!(f, "{} {} {} {}", self.name, a, b, format_value(*farads))
            }
            ElementKind::Mosfet {
                d,
                g,
                s,
                b,
                model,
                w,
                l,
            } => write!(
                f,
                "{} {} {} {} {} {} w={} l={}",
                self.name,
                d,
                g,
                s,
                b,
                model,
                format_value(*w),
                format_value(*l)
            ),
            ElementKind::VSource { p, n, wave } | ElementKind::ISource { p, n, wave } => {
                write!(f, "{} {} {} {}", self.name, p, n, wave)
            }
            ElementKind::Inductor { a, b, henries } => {
                write!(f, "{} {} {} {}", self.name, a, b, format_value(*henries))
            }
            ElementKind::Vcvs { p, n, cp, cn, gain } => write!(
                f,
                "{} {} {} {} {} {}",
                self.name,
                p,
                n,
                cp,
                cn,
                format_value(*gain)
            ),
            ElementKind::Vccs { p, n, cp, cn, gm } => write!(
                f,
                "{} {} {} {} {} {}",
                self.name,
                p,
                n,
                cp,
                cn,
                format_value(*gm)
            ),
            ElementKind::Cccs { p, n, ctrl, gain } => {
                write!(
                    f,
                    "{} {} {} {} {}",
                    self.name,
                    p,
                    n,
                    ctrl,
                    format_value(*gain)
                )
            }
            ElementKind::Ccvs { p, n, ctrl, ohms } => {
                write!(
                    f,
                    "{} {} {} {} {}",
                    self.name,
                    p,
                    n,
                    ctrl,
                    format_value(*ohms)
                )
            }
            ElementKind::Diode { p, n, model, area } => {
                if *area == 1.0 {
                    write!(f, "{} {} {} {}", self.name, p, n, model)
                } else {
                    write!(
                        f,
                        "{} {} {} {} area={}",
                        self.name,
                        p,
                        n,
                        model,
                        format_value(*area)
                    )
                }
            }
        }
    }
}

impl fmt::Display for Waveform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Waveform::Dc(v) => write!(f, "dc {}", format_value(*v)),
            Waveform::Pulse {
                v1,
                v2,
                td,
                tr,
                tf,
                pw,
                per,
            } => write!(
                f,
                "pulse({} {} {} {} {} {} {})",
                format_value(*v1),
                format_value(*v2),
                format_value(*td),
                format_value(*tr),
                format_value(*tf),
                format_value(*pw),
                format_value(*per)
            ),
            Waveform::Pwl(pts) => {
                write!(f, "pwl(")?;
                for (i, (t, v)) in pts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{} {}", format_value(*t), format_value(*v))?;
                }
                write!(f, ")")
            }
            Waveform::Sin { vo, va, freq } => write!(
                f,
                "sin({} {} {})",
                format_value(*vo),
                format_value(*va),
                format_value(*freq)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 5.0,
            td: 1e-9,
            tr: 1e-9,
            tf: 1e-9,
            pw: 3e-9,
            per: 10e-9,
        };
        assert_eq!(w.eval(0.0), 0.0);
        assert!((w.eval(1.5e-9) - 2.5).abs() < 1e-9); // mid-rise
        assert_eq!(w.eval(3e-9), 5.0); // flat top
        assert!((w.eval(5.5e-9) - 2.5).abs() < 1e-9); // mid-fall
        assert_eq!(w.eval(8e-9), 0.0); // low
        assert!((w.eval(11.5e-9) - 2.5).abs() < 1e-9); // second period mid-rise
    }

    #[test]
    fn pwl_interpolates() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 5.0), (2e-9, 5.0), (3e-9, 0.0)]);
        assert_eq!(w.eval(-1.0), 0.0);
        assert_eq!(w.eval(0.5e-9), 2.5);
        assert_eq!(w.eval(1.5e-9), 5.0);
        assert_eq!(w.eval(2.5e-9), 2.5);
        assert_eq!(w.eval(10e-9), 0.0);
    }

    #[test]
    fn sin_and_dc() {
        let s = Waveform::Sin {
            vo: 1.0,
            va: 2.0,
            freq: 1.0,
        };
        assert!((s.eval(0.25) - 3.0).abs() < 1e-12);
        assert_eq!(Waveform::Dc(3.3).eval(42.0), 3.3);
        assert_eq!(Waveform::Dc(3.3).dc_value(), 3.3);
    }

    #[test]
    fn pulse_breakpoints_within_window() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            td: 0.0,
            tr: 1e-9,
            tf: 1e-9,
            pw: 2e-9,
            per: 8e-9,
        };
        let bp = w.breakpoints(10e-9);
        let has = |t: f64| bp.iter().any(|&b| (b - t).abs() < 1e-15);
        assert!(has(1e-9));
        assert!(has(3e-9));
        assert!(has(4e-9));
        assert!(has(8e-9));
        assert!(bp.iter().all(|&t| t < 10e-9));
    }

    #[test]
    fn ground_aliases() {
        assert!(is_ground("0"));
        assert!(is_ground("GND"));
        assert!(is_ground("gnd!"));
        assert!(!is_ground("out"));
    }

    #[test]
    fn element_nodes_and_is_rc() {
        let r = Element::resistor("R1", "a", "b", 100.0);
        assert!(r.is_rc());
        assert_eq!(r.nodes(), vec!["a".to_owned(), "b".to_owned()]);
        let m = Element {
            name: "M1".into(),
            kind: ElementKind::Mosfet {
                d: "d".into(),
                g: "g".into(),
                s: "s".into(),
                b: "b".into(),
                model: "nch".into(),
                w: 1e-6,
                l: 1e-6,
            },
        };
        assert!(!m.is_rc());
        assert_eq!(m.nodes().len(), 4);
    }

    #[test]
    fn display_roundtrippable_tokens() {
        let nl = {
            let mut n = Netlist::new("test deck");
            n.elements.push(Element::resistor("R1", "in", "out", 250.0));
            n.elements
                .push(Element::capacitor("C1", "out", "0", 1.35e-12));
            n.analyses.push(Analysis::Tran {
                tstep: 1e-11,
                tstop: 5e-9,
            });
            n
        };
        let text = nl.to_string();
        assert!(text.contains("R1 in out 250"));
        assert!(text.to_lowercase().contains(".tran"));
        assert!(text.to_lowercase().contains(".end"));
    }
}
