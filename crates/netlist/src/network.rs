//! RC network extraction and matrix stamping.
//!
//! Implements the front half of RCFIT's flow (Figure 1): pull every
//! resistor and capacitor out of a deck, classify nodes as *port* or
//! *internal* (a node is a port when it touches both an RC element and a
//! non-RC device — it connects the network to the rest of the circuit),
//! and stamp the network into the partitioned conductance/susceptance
//! matrices `G` and `C` with ports ordered first.

use std::collections::BTreeMap;

use pact_sparse::{CsrMat, TripletMat};

use crate::ast::{is_ground, Element, ElementKind, Netlist};

/// A two-terminal RC branch inside an [`RcNetwork`]; `None` terminals are
/// the common/ground node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Branch {
    /// First terminal (index into [`RcNetwork::node_names`]), or ground.
    pub a: Option<usize>,
    /// Second terminal, or ground.
    pub b: Option<usize>,
    /// Element value: ohms for resistors, farads for capacitors.
    pub value: f64,
}

/// A multiport RC network extracted from a netlist, ports first.
///
/// Node index `i < num_ports` is a port; the rest are internal. The
/// ground/common node is implicit (it is the paper's "node 0").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RcNetwork {
    /// Node names; indices `0..num_ports` are ports.
    pub node_names: Vec<String>,
    /// Number of port nodes `m`.
    pub num_ports: usize,
    /// Resistor branches.
    pub resistors: Vec<Branch>,
    /// Capacitor branches.
    pub capacitors: Vec<Branch>,
}

/// Error from extracting or stamping an RC network.
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkError {
    /// The deck still contains unexpanded subcircuit instances; call
    /// [`crate::Netlist::flatten`] first (RC elements hidden inside
    /// subcircuits would otherwise be silently missed).
    NotFlattened {
        /// Name of the first unexpanded instance.
        instance: String,
    },
    /// A resistor has a non-positive value; the stamped `G` would not be
    /// non-negative definite.
    NonPositiveResistor {
        /// Element name.
        name: String,
        /// Offending value in ohms.
        ohms: f64,
    },
    /// A capacitor has a negative value.
    NegativeCapacitor {
        /// Element name.
        name: String,
        /// Offending value in farads.
        farads: f64,
    },
    /// An element value is NaN or infinite; stamping it would poison the
    /// matrices (and NaN eigenvalues are unorderable downstream).
    NonFiniteValue {
        /// Element name.
        name: String,
        /// The offending value.
        value: f64,
    },
    /// The network has no port nodes; reduction would erase it entirely.
    NoPorts,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::NonPositiveResistor { name, ohms } => {
                write!(f, "resistor {name} has non-positive value {ohms}")
            }
            NetworkError::NegativeCapacitor { name, farads } => {
                write!(f, "capacitor {name} has negative value {farads}")
            }
            NetworkError::NonFiniteValue { name, value } => {
                write!(f, "element {name} has non-finite value {value}")
            }
            NetworkError::NoPorts => write!(f, "RC network has no port nodes"),
            NetworkError::NotFlattened { instance } => write!(
                f,
                "deck contains unexpanded subcircuit instance {instance}; flatten() first"
            ),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Result of [`extract_rc`]: the RC network plus the remaining (non-RC)
/// elements of the deck.
#[derive(Clone, Debug)]
pub struct Extraction {
    /// The multiport RC network, ports first.
    pub network: RcNetwork,
    /// The elements that were *not* absorbed into the network.
    pub rest: Vec<Element>,
}

/// Extracts all resistors and capacitors from a netlist into an
/// [`RcNetwork`], applying the paper's port rule: *any node connected to a
/// resistor or capacitor as well as to a device other than a resistor or
/// capacitor is made a port node*.
///
/// Additional node names can be forced to be ports via `extra_ports`
/// (e.g. observation nodes like the paper's substrate monitor port).
///
/// # Errors
///
/// Returns [`NetworkError`] for non-physical element values or a network
/// with no ports.
pub fn extract_rc(netlist: &Netlist, extra_ports: &[&str]) -> Result<Extraction, NetworkError> {
    if let Some(inst) = netlist.instances.first() {
        return Err(NetworkError::NotFlattened {
            instance: inst.name.clone(),
        });
    }
    let mut touches_rc: BTreeMap<String, bool> = BTreeMap::new();
    let mut touches_other: BTreeMap<String, bool> = BTreeMap::new();
    for e in &netlist.elements {
        for node in e.nodes() {
            if is_ground(&node) {
                continue;
            }
            if e.is_rc() {
                touches_rc.insert(node, true);
            } else {
                touches_other.insert(node, true);
            }
        }
    }
    // Port = RC-connected ∧ (other-connected ∨ explicitly requested).
    let mut ports: Vec<String> = Vec::new();
    let mut internals: Vec<String> = Vec::new();
    for node in touches_rc.keys() {
        let forced = extra_ports.iter().any(|p| p.eq_ignore_ascii_case(node));
        if touches_other.contains_key(node) || forced {
            ports.push(node.clone());
        } else {
            internals.push(node.clone());
        }
    }
    if ports.is_empty() {
        return Err(NetworkError::NoPorts);
    }
    let mut node_names = ports;
    let num_ports = node_names.len();
    node_names.extend(internals);
    let index: BTreeMap<String, usize> = node_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i))
        .collect();

    let lookup = |name: &str| -> Option<usize> {
        if is_ground(name) {
            None
        } else {
            Some(index[name])
        }
    };

    let mut network = RcNetwork {
        node_names,
        num_ports,
        resistors: Vec::new(),
        capacitors: Vec::new(),
    };
    let mut rest = Vec::new();
    for e in &netlist.elements {
        match &e.kind {
            ElementKind::Resistor { a, b, ohms } => {
                if !ohms.is_finite() {
                    return Err(NetworkError::NonFiniteValue {
                        name: e.name.clone(),
                        value: *ohms,
                    });
                }
                if *ohms <= 0.0 {
                    return Err(NetworkError::NonPositiveResistor {
                        name: e.name.clone(),
                        ohms: *ohms,
                    });
                }
                network.resistors.push(Branch {
                    a: lookup(a),
                    b: lookup(b),
                    value: *ohms,
                });
            }
            ElementKind::Capacitor { a, b, farads } => {
                if !farads.is_finite() {
                    return Err(NetworkError::NonFiniteValue {
                        name: e.name.clone(),
                        value: *farads,
                    });
                }
                if *farads < 0.0 {
                    return Err(NetworkError::NegativeCapacitor {
                        name: e.name.clone(),
                        farads: *farads,
                    });
                }
                network.capacitors.push(Branch {
                    a: lookup(a),
                    b: lookup(b),
                    value: *farads,
                });
            }
            _ => rest.push(e.clone()),
        }
    }
    Ok(Extraction { network, rest })
}

/// The stamped matrices of an RC network: `(G + sC) x = b` with ports
/// ordered first (eq. 1–2 of the paper).
#[derive(Clone, Debug)]
pub struct Stamped {
    /// Conductance matrix `G`, `(m+n) × (m+n)`, symmetric non-negative
    /// definite.
    pub g: CsrMat,
    /// Susceptance (capacitance) matrix `C`, same shape and properties.
    pub c: CsrMat,
    /// Number of ports `m` (leading block).
    pub num_ports: usize,
}

impl RcNetwork {
    /// Total node count `m + n` (excluding ground).
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of internal nodes `n`.
    pub fn num_internal(&self) -> usize {
        self.node_names.len() - self.num_ports
    }

    /// Stamps the network into its `G` and `C` matrices.
    pub fn stamp(&self) -> Stamped {
        let n = self.num_nodes();
        let mut g = TripletMat::with_capacity(n, n, 4 * self.resistors.len());
        for r in &self.resistors {
            g.stamp_conductance(r.a, r.b, 1.0 / r.value);
        }
        let mut c = TripletMat::with_capacity(n, n, 4 * self.capacitors.len());
        for cap in &self.capacitors {
            c.stamp_conductance(cap.a, cap.b, cap.value);
        }
        Stamped {
            g: g.to_csr(),
            c: c.to_csr(),
            num_ports: self.num_ports,
        }
    }

    /// Index of a node by name, if present.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.node_names.iter().position(|n| n == name)
    }

    /// FNV-1a fingerprint of the network *topology*: node and port
    /// counts plus the terminal pairs of every resistor and capacitor,
    /// element values excluded.
    ///
    /// Two networks with the same key stamp `G`/`C` matrices with the
    /// same sparsity pattern, so they share one symbolic Cholesky
    /// analysis in a `ReductionSession`. The `rcfitd` daemon shards
    /// requests across workers by this key, which is what lands
    /// same-topology decks on the same warm session. (Node *names* are
    /// deliberately excluded: only index structure shapes the matrices.)
    pub fn topology_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let eat = |h: u64, w: u64| (h ^ w).wrapping_mul(PRIME);
        // Ground terminals hash as `usize::MAX` (never a node index).
        let term = |t: Option<usize>| t.map_or(u64::MAX, |i| i as u64);
        let mut h = OFFSET;
        h = eat(h, self.node_names.len() as u64);
        h = eat(h, self.num_ports as u64);
        h = eat(h, self.resistors.len() as u64);
        h = eat(h, self.capacitors.len() as u64);
        for r in &self.resistors {
            h = eat(h, term(r.a));
            h = eat(h, term(r.b));
        }
        for c in &self.capacitors {
            h = eat(h, term(c.a));
            h = eat(h, term(c.b));
        }
        h
    }

    /// Element counts `(resistors, capacitors)` — the paper's "R's" and
    /// "C's" table columns.
    pub fn element_counts(&self) -> (usize, usize) {
        (self.resistors.len(), self.capacitors.len())
    }

    /// Splits the network into its connected components (ground does not
    /// connect components — two nets that only share the ground node are
    /// electrically independent at the ports).
    ///
    /// Each component is a self-contained [`RcNetwork`] with its own
    /// ports-first ordering; node *names* are preserved, so reduced
    /// components can be emitted into one netlist without clashes.
    /// Components containing no port node cannot influence any port and
    /// are returned too (callers typically drop them).
    pub fn connected_components(&self) -> Vec<RcNetwork> {
        let n = self.num_nodes();
        // Union-find over non-ground terminals.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        };
        for b in self.resistors.iter().chain(&self.capacitors) {
            if let (Some(x), Some(y)) = (b.a, b.b) {
                union(&mut parent, x, y);
            }
        }
        // Group nodes by root.
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for v in 0..n {
            let r = find(&mut parent, v);
            groups.entry(r).or_default().push(v);
        }
        // Build each component with ports first (preserving global order).
        let mut components = Vec::with_capacity(groups.len());
        for nodes in groups.values() {
            let ports: Vec<usize> = nodes
                .iter()
                .copied()
                .filter(|&v| v < self.num_ports)
                .collect();
            let internals: Vec<usize> = nodes
                .iter()
                .copied()
                .filter(|&v| v >= self.num_ports)
                .collect();
            let mut remap = vec![usize::MAX; n];
            let mut node_names = Vec::with_capacity(nodes.len());
            for (new, &old) in ports.iter().chain(&internals).enumerate() {
                remap[old] = new;
                node_names.push(self.node_names[old].clone());
            }
            let map_branch = |b: &Branch| -> Option<Branch> {
                let a = match b.a {
                    Some(x) if remap[x] != usize::MAX => Some(remap[x]),
                    Some(_) => return None,
                    None => None,
                };
                let bb = match b.b {
                    Some(x) if remap[x] != usize::MAX => Some(remap[x]),
                    Some(_) => return None,
                    None => None,
                };
                Some(Branch {
                    a,
                    b: bb,
                    value: b.value,
                })
            };
            let in_component = |b: &Branch| -> bool {
                b.a.is_some_and(|x| remap[x] != usize::MAX)
                    || b.b.is_some_and(|x| remap[x] != usize::MAX)
            };
            components.push(RcNetwork {
                num_ports: ports.len(),
                node_names,
                resistors: self
                    .resistors
                    .iter()
                    .filter(|b| in_component(b))
                    .filter_map(map_branch)
                    .collect(),
                capacitors: self
                    .capacitors
                    .iter()
                    .filter(|b| in_component(b))
                    .filter_map(map_branch)
                    .collect(),
            });
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ladder_deck() -> Netlist {
        // in --R-- mid --R-- out, caps at mid/out, driven by V at `in`,
        // loaded by a MOSFET at `out`.
        parse(
            "\
* ladder
V1 in 0 5
R1 in mid 125
R2 mid out 125
C1 mid 0 0.7p
C2 out 0 0.65p
M1 sink out 0 0 nch w=1u l=1u
.model nch nmos (vto=0.7)
.end
",
        )
        .unwrap()
    }

    #[test]
    fn port_rule_matches_paper() {
        let ex = extract_rc(&ladder_deck(), &[]).unwrap();
        let net = &ex.network;
        // `in` touches V1 (non-RC) + R1 → port. `out` touches M1 → port.
        // `mid` touches only R/C → internal.
        assert_eq!(net.num_ports, 2);
        assert!(net.node_index("in").unwrap() < 2);
        assert!(net.node_index("out").unwrap() < 2);
        assert_eq!(net.node_index("mid").unwrap(), 2);
        assert_eq!(net.num_internal(), 1);
        // Non-RC elements survive in `rest`.
        assert_eq!(ex.rest.len(), 2); // V1 and M1
    }

    #[test]
    fn forced_extra_ports() {
        let ex = extract_rc(&ladder_deck(), &["mid"]).unwrap();
        assert_eq!(ex.network.num_ports, 3);
        assert!(ex.network.node_index("mid").unwrap() < 3);
    }

    #[test]
    fn stamping_is_symmetric_and_dominant() {
        let ex = extract_rc(&ladder_deck(), &[]).unwrap();
        let st = ex.network.stamp();
        assert!(st.g.is_symmetric(0.0));
        assert!(st.c.is_symmetric(0.0));
        assert!(st.g.is_diag_dominant(1e-15));
        assert!(st.c.is_diag_dominant(1e-15));
        let n = ex.network.num_nodes();
        assert_eq!(st.g.nrows(), n);
        // G values: conductance 1/125 = 8 mS stamps.
        let g_in_in = st.g.get(
            ex.network.node_index("in").unwrap(),
            ex.network.node_index("in").unwrap(),
        );
        assert!((g_in_in - 1.0 / 125.0).abs() < 1e-15);
    }

    #[test]
    fn grounded_elements_stamp_diagonal_only() {
        let nl = parse("* g\nV1 a 0 1\nR1 a 0 100\nC1 a 0 1p\n.end\n").unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        let st = ex.network.stamp();
        assert_eq!(st.g.nnz(), 1);
        assert!((st.g.get(0, 0) - 0.01).abs() < 1e-15);
        assert!((st.c.get(0, 0) - 1e-12).abs() < 1e-24);
    }

    #[test]
    fn rejects_bad_values() {
        let nl = parse("* b\nV1 a 0 1\nR1 a 0 -5\n.end\n").unwrap();
        assert!(matches!(
            extract_rc(&nl, &[]),
            Err(NetworkError::NonPositiveResistor { .. })
        ));
    }

    #[test]
    fn no_ports_is_error() {
        // RC-only floating network with no non-RC device and no forcing.
        let nl = parse("* f\nR1 a b 100\nC1 b 0 1p\n.end\n").unwrap();
        assert!(matches!(extract_rc(&nl, &[]), Err(NetworkError::NoPorts)));
    }

    #[test]
    fn counts() {
        let ex = extract_rc(&ladder_deck(), &[]).unwrap();
        assert_eq!(ex.network.element_counts(), (2, 2));
    }

    #[test]
    fn connected_components_split_independent_nets() {
        // Two nets sharing only ground, plus a floating RC island.
        let nl = parse(
            "\
* nets
V1 a1 0 1
R1 a1 a2 100
C1 a2 0 1p
M1 x a2 0 0 nch
V2 b1 0 1
R2 b1 b2 50
C2 b2 0 2p
M2 y b2 0 0 nch
R3 f1 f2 10
C3 f2 0 1p
.model nch nmos()
.end
",
        )
        .unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        let comps = ex.network.connected_components();
        assert_eq!(comps.len(), 3);
        let with_ports: Vec<_> = comps.iter().filter(|c| c.num_ports > 0).collect();
        assert_eq!(with_ports.len(), 2);
        // Each ported component has 2 ports (driver + receiver nodes)...
        for c in &with_ports {
            assert_eq!(c.num_ports, 2);
            assert_eq!(c.num_internal(), 0);
            let (r, cc) = c.element_counts();
            assert_eq!((r, cc), (1, 1));
        }
        // ...and the floating island has none.
        let floating = comps.iter().find(|c| c.num_ports == 0).unwrap();
        assert_eq!(floating.num_nodes(), 2);
    }

    #[test]
    fn components_preserve_stamps() {
        // Stamping a component must equal the corresponding sub-block of
        // the full stamp.
        let nl = parse(
            "* c\nV1 p1 0 1\nR1 p1 m 100\nC1 m 0 1p\nR2 m q 200\nM1 x q 0 0 n\nV2 p2 0 1\nR9 p2 0 5k\n.model n nmos()\n.end\n",
        )
        .unwrap();
        let ex = extract_rc(&nl, &[]).unwrap();
        let comps = ex.network.connected_components();
        for c in &comps {
            let st = c.stamp();
            assert!(st.g.is_symmetric(0.0));
            for (i, name) in c.node_names.iter().enumerate() {
                let gi = ex.network.node_index(name).unwrap();
                for (j, name2) in c.node_names.iter().enumerate() {
                    let gj = ex.network.node_index(name2).unwrap();
                    let full = ex.network.stamp();
                    assert_eq!(st.g.get(i, j), full.g.get(gi, gj));
                }
            }
        }
    }

    #[test]
    fn single_component_roundtrip() {
        let ex = extract_rc(&ladder_deck(), &[]).unwrap();
        let comps = ex.network.connected_components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].num_ports, ex.network.num_ports);
        assert_eq!(comps[0].num_nodes(), ex.network.num_nodes());
    }

    #[test]
    fn topology_key_tracks_structure_not_values() {
        let base = extract_rc(&ladder_deck(), &[]).unwrap().network;

        // Same structure, different element values: same key (this is
        // what lets a process-corner sweep share one warm session).
        let mut scaled = base.clone();
        for r in &mut scaled.resistors {
            r.value *= 3.0;
        }
        for c in &mut scaled.capacitors {
            c.value *= 0.5;
        }
        assert_eq!(base.topology_key(), scaled.topology_key());

        // Renaming nodes changes nothing structural.
        let mut renamed = base.clone();
        for n in &mut renamed.node_names {
            n.push_str("_x");
        }
        assert_eq!(base.topology_key(), renamed.topology_key());

        // Adding a branch, rewiring a terminal, or changing the port
        // split all change the key.
        let mut extra = base.clone();
        extra.capacitors.push(Branch {
            a: Some(0),
            b: None,
            value: 1e-15,
        });
        assert_ne!(base.topology_key(), extra.topology_key());

        let mut rewired = base.clone();
        rewired.resistors[0].b = None; // to ground instead of a node
        assert_ne!(base.topology_key(), rewired.topology_key());

        let mut reported = base.clone();
        reported.num_ports = base.num_ports.saturating_sub(1).max(1);
        if reported.num_ports != base.num_ports {
            assert_ne!(base.topology_key(), reported.topology_key());
        }
    }
}
