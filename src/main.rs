//! RCFIT — a SPICE-in, SPICE-out RC network reduction tool built on PACT
//! (the prototype CAD tool of Section 5 of Kerns & Yang, DAC 1996).
//!
//! ```text
//! rcfit INPUT.sp [INPUT2.sp ...] [-o OUTPUT.sp] [--fmax HZ] [--tol FRACTION]
//!       [--sparsify TOL] [--port NODE]... [--threads N]
//!       [--eigen auto|dense|lanczos|lowrank] [--dense] [--stats]
//!       [--trace] [--log-json PATH] [--strict-pivots]
//!       [--hier] [--block-size N] [--max-depth N]
//!       [--strategy flat|hier|multipoint] [--points HZ,HZ,...]
//! ```
//!
//! Several decks may be given at once; they are reduced through one
//! [`pact::ReductionSession`], so same-topology decks reuse the cached
//! symbolic Cholesky analysis instead of re-running fill-reducing
//! ordering and elimination-tree construction per deck.
//!
//! The flow mirrors the paper's Figure 1: parse → extract RC elements and
//! classify ports → sanitize (prune floating internal nodes, drop
//! zero-valued caps) → stamp `G`,`C` → Cholesky congruence → pole
//! analysis via LASO → drop poles above the cutoff → sparsify → unstamp
//! → splice the reduced network back into the deck and write it out.
//!
//! Every failure surfaces as a typed [`PactError`] with node/element
//! attribution — the reduction path never panics on malformed input.
//! `--trace` prints per-phase wall times, counters, and warnings;
//! `--log-json` writes the same telemetry as machine-readable JSON
//! (schema `rcfit-telemetry-v1`, documented in DESIGN.md).

use std::process::ExitCode;

use pact::{CholKernel, PactError, ReductionSession};
use pact_netlist::parse_value;
use pact_serve::{
    prepare_deck, reduce_prepared, render_reduced, DeckOptions, EigenArg, ReducedDeck, StrategyArg,
    DEFAULT_BLOCK_SIZE, DEFAULT_CHAIN_TOL, DEFAULT_MAX_DEPTH,
};

#[derive(Debug)]
struct Args {
    inputs: Vec<String>,
    output: Option<String>,
    f_max: f64,
    tolerance: f64,
    sparsify: f64,
    extra_ports: Vec<String>,
    threads: Option<usize>,
    eigen: Option<EigenArg>,
    dense: bool,
    stats: bool,
    components: bool,
    verify: bool,
    trace: bool,
    log_json: Option<String>,
    strict_pivots: bool,
    hier: bool,
    block_size: usize,
    max_depth: usize,
    chol_kernel: CholKernel,
    strategy: Option<StrategyArg>,
    points: Option<Vec<f64>>,
    extract: bool,
    collapse_chains: bool,
    chain_tol: Option<f64>,
}

fn usage() -> &'static str {
    "usage: rcfit INPUT.sp [INPUT2.sp ...] [-o OUTPUT.sp] [--fmax HZ] [--tol FRAC] \
     [--sparsify TOL] [--port NODE]... [--threads N] \
     [--eigen auto|dense|lanczos|lowrank] [--dense] [--stats] [--components] \
     [--verify] [--trace] [--log-json PATH] [--strict-pivots] \
     [--hier] [--block-size N] [--max-depth N] \
     [--strategy flat|hier|multipoint] [--points HZ,HZ,...] \
     [--chol-kernel auto|supernodal|scalar] \
     [--extract] [--collapse-chains] [--chain-tol TOL]\n\
     defaults: --fmax 1g --tol 0.05 --sparsify 1e-9 --threads <all cores>\n\
     HZ accepts SPICE suffixes (500meg, 3g, ...); the reduced model is\n\
     bit-identical for every --threads value.\n\
     --eigen picks the pole-analysis backend (default lanczos; --dense is an\n\
     alias for --eigen lowrank); several decks reduce through one session so\n\
     same-topology decks reuse the symbolic analysis (-o/--log-json then need\n\
     a single deck).\n\
     --trace prints per-phase timings/counters; --log-json writes them as JSON;\n\
     --strict-pivots fails on quasi-singular pivots instead of perturbing them;\n\
     --hier reduces via nested-dissection blocks of at most --block-size nodes\n\
     (default 2000) with --max-depth recursion levels (default 16);\n\
     --strategy picks the reduction algorithm (flat = one-shot PACT, hier =\n\
     nested dissection, multipoint = multipoint moment expansion with\n\
     passivity-preserving congruence); --points overrides multipoint's\n\
     auto-selected expansion frequencies (comma-separated, SPICE suffixes\n\
     accepted; positive = imaginary-axis s=j2\u{3c0}f, negative = negative real\n\
     axis s=-2\u{3c0}|f|);\n\
     --chol-kernel picks the numeric Cholesky kernel (default auto = the\n\
     supernodal blocked kernel; scalar is the up-looking reference kernel);\n\
     --extract reduces each maximal ported RC subnetwork independently (the\n\
     embedded-parasitics flow for mixed decks); --collapse-chains runs the\n\
     degree-2 series-chain collapse pre-pass before reduction, re-segmenting\n\
     long RC chains within --chain-tol relative in-band error (default 1e-6)"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        inputs: Vec::new(),
        output: None,
        f_max: 1e9,
        tolerance: 0.05,
        sparsify: 1e-9,
        extra_ports: Vec::new(),
        threads: None,
        eigen: None,
        dense: false,
        stats: false,
        components: false,
        verify: false,
        trace: false,
        log_json: None,
        strict_pivots: false,
        hier: false,
        block_size: DEFAULT_BLOCK_SIZE,
        max_depth: DEFAULT_MAX_DEPTH,
        chol_kernel: CholKernel::Auto,
        strategy: None,
        points: None,
        extract: false,
        collapse_chains: false,
        chain_tol: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "-o" | "--output" => args.output = Some(next(a)?),
            "--fmax" => {
                args.f_max = parse_value(&next(a)?).map_err(|e| e.to_string())?;
            }
            "--tol" => {
                args.tolerance = next(a)?
                    .parse()
                    .map_err(|_| "--tol needs a number".to_owned())?;
            }
            "--sparsify" => {
                args.sparsify = next(a)?
                    .parse()
                    .map_err(|_| "--sparsify needs a number".to_owned())?;
            }
            "--port" => args.extra_ports.push(next(a)?),
            "--threads" => {
                let n: usize = next(a)?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--threads needs a positive integer".to_owned());
                }
                args.threads = Some(n);
            }
            "--eigen" => args.eigen = Some(EigenArg::parse(&next(a)?)?),
            "--dense" => args.dense = true,
            "--stats" => args.stats = true,
            "--components" => args.components = true,
            "--verify" => args.verify = true,
            "--trace" => args.trace = true,
            "--log-json" => args.log_json = Some(next(a)?),
            "--strict-pivots" => args.strict_pivots = true,
            "--hier" => args.hier = true,
            "--block-size" => {
                let n: usize = next(a)?
                    .parse()
                    .map_err(|_| "--block-size needs a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--block-size needs a positive integer".to_owned());
                }
                args.block_size = n;
            }
            "--max-depth" => {
                args.max_depth = next(a)?
                    .parse()
                    .map_err(|_| "--max-depth needs an integer".to_owned())?;
            }
            "--strategy" => args.strategy = Some(StrategyArg::parse(&next(a)?)?),
            "--points" => {
                let list = next(a)?;
                let mut points = Vec::new();
                for part in list.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        return Err("--points has an empty entry".to_owned());
                    }
                    // parse_value has no sign handling, so peel a
                    // leading `-` (negative = negative-real-axis point).
                    let (mag, neg) = match part.strip_prefix('-') {
                        Some(rest) => (rest, true),
                        None => (part, false),
                    };
                    let f = parse_value(mag).map_err(|e| format!("--points: {e}"))?;
                    let f = if neg { -f } else { f };
                    if !f.is_finite() || f == 0.0 {
                        return Err(
                            "--points entries must be finite and nonzero (the s = 0 moment is always matched)"
                                .to_owned(),
                        );
                    }
                    points.push(f);
                }
                args.points = Some(points);
            }
            "--chol-kernel" => {
                args.chol_kernel = match next(a)?.as_str() {
                    "auto" => CholKernel::Auto,
                    "supernodal" => CholKernel::Supernodal,
                    "scalar" => CholKernel::Scalar,
                    other => {
                        return Err(format!(
                            "--chol-kernel expects auto, supernodal, or scalar (got `{other}`)"
                        ))
                    }
                };
            }
            "--extract" => args.extract = true,
            "--collapse-chains" => args.collapse_chains = true,
            "--chain-tol" => {
                let tol: f64 = next(a)?
                    .parse()
                    .map_err(|_| "--chain-tol needs a number".to_owned())?;
                if !tol.is_finite() || tol <= 0.0 {
                    return Err("--chain-tol needs a positive finite number".to_owned());
                }
                args.chain_tol = Some(tol);
            }
            "-h" | "--help" => return Err(usage().to_owned()),
            other if !other.starts_with('-') => {
                args.inputs.push(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if args.inputs.is_empty() {
        return Err(usage().to_owned());
    }
    if args.points.is_some() && args.strategy != Some(StrategyArg::Multipoint) {
        return Err("--points requires --strategy multipoint".to_owned());
    }
    if args.chain_tol.is_some() && !args.collapse_chains {
        return Err("--chain-tol requires --collapse-chains".to_owned());
    }
    if args.inputs.len() > 1 {
        if args.output.is_some() {
            return Err("-o/--output needs a single input deck".to_owned());
        }
        if args.log_json.is_some() {
            return Err("--log-json needs a single input deck".to_owned());
        }
    }
    Ok(args)
}

/// The CLI flags as shared-pipeline options. Resolution of defaults
/// (the `--dense` alias, pivot relief, ordering, dense threshold) lives
/// in [`DeckOptions`], shared verbatim with the `rcfitd` daemon so both
/// front ends produce bit-identical output.
fn deck_options(args: &Args) -> DeckOptions {
    DeckOptions {
        f_max: args.f_max,
        tolerance: args.tolerance,
        sparsify: args.sparsify,
        extra_ports: args.extra_ports.clone(),
        threads: args.threads,
        eigen: args.eigen,
        dense: args.dense,
        components: args.components,
        strict_pivots: args.strict_pivots,
        hier: args.hier,
        block_size: args.block_size,
        max_depth: args.max_depth,
        chol_kernel: args.chol_kernel,
        strategy: args.strategy,
        points: args.points.clone(),
        extract: args.extract,
        collapse_chains: args.collapse_chains,
        chain_tol: args.chain_tol.unwrap_or(DEFAULT_CHAIN_TOL),
    }
}

fn run(args: &Args) -> Result<(), PactError> {
    let mut session = ReductionSession::new(deck_options(args).reduce_options()?);
    let batch = args.inputs.len() > 1;
    for (i, input) in args.inputs.iter().enumerate() {
        if batch {
            eprintln!(
                "rcfit: reducing {input} (deck {} of {})",
                i + 1,
                args.inputs.len()
            );
        }
        run_deck(args, input, &mut session)?;
    }
    if batch {
        eprintln!(
            "rcfit: batch done: {} deck(s), {} cached symbolic analysis pattern(s)",
            args.inputs.len(),
            session.cached_patterns()
        );
    }
    Ok(())
}

fn run_deck(args: &Args, input: &str, session: &mut ReductionSession) -> Result<(), PactError> {
    let text = std::fs::read_to_string(input).map_err(|e| PactError::io(input, &e))?;
    // The front half (parse → flatten → extract → sanitize) and the
    // reduce/render back half are the shared pact-serve pipeline — the
    // CLI only adds progress reporting around it.
    let opts = deck_options(args);
    let prep = prepare_deck(&text, &opts)?;
    eprintln!(
        "rcfit: extracted RC network: {} ports, {} internal nodes, {} R, {} C",
        prep.raw_ports, prep.raw_internal, prep.raw_resistors, prep.raw_capacitors
    );
    for w in &prep.sanitize_warnings {
        eprintln!("rcfit: warning: {w}");
    }
    if args.collapse_chains {
        eprintln!(
            "rcfit: chain collapse: {} chain(s) collapsed, {} internal node(s) eliminated",
            prep.telemetry.counters.chains_collapsed, prep.telemetry.counters.nodes_eliminated
        );
    }

    let red = reduce_prepared(&prep, session, &opts)?;
    let mut tel = prep.telemetry.clone();
    tel.absorb(&red.telemetry());
    match &red {
        ReducedDeck::Components {
            reduction: c,
            extract_subnets,
        } => {
            if args.extract {
                eprintln!(
                    "rcfit: {} embedded RC subnetwork(s) reduced, {} floating island(s) dropped, {} pole(s) kept",
                    extract_subnets,
                    c.floating_dropped,
                    c.num_poles()
                );
            } else {
                eprintln!(
                    "rcfit: {} component(s) reduced, {} floating island(s) dropped, {} pole(s) kept",
                    c.reductions.len(),
                    c.floating_dropped,
                    c.num_poles()
                );
            }
        }
        ReducedDeck::Whole(r) => {
            let cutoff = session.options().cutoff;
            eprintln!(
                "rcfit: kept {} pole(s) below the {:.3e} Hz cutoff ({} internal nodes eliminated)",
                r.model.num_poles(),
                cutoff.cutoff_frequency(),
                prep.network.num_internal() - r.model.num_poles()
            );
            if args.stats {
                let s = &r.stats;
                eprintln!(
                    "rcfit: reduction {:.3} s; Cholesky |L| = {} nnz ({:.1} MB); modelled peak {:.1} MB",
                    s.elapsed_seconds,
                    s.chol_nnz,
                    s.chol_memory_bytes as f64 / 1e6,
                    s.modelled_memory_bytes as f64 / 1e6
                );
                if let Some(ls) = s.lanczos {
                    eprintln!(
                        "rcfit: LASO: {} matvecs, {} iterations, {} restarts",
                        ls.matvecs, ls.iterations, ls.restarts
                    );
                }
                match r.model.passivity_margins() {
                    Ok((g, c)) => {
                        eprintln!("rcfit: passivity margins: λmin(G'')={g:.3e}, λmin(C'')={c:.3e}");
                    }
                    Err(e) => eprintln!("rcfit: passivity check failed: {e}"),
                }
            }
            if args.verify {
                let parts = pact::Partitions::split(&prep.network.stamp());
                let ctx = pact_sparse::ParCtx::new(args.threads);
                let report = tel.time("verify_sweep", || {
                    pact::verify_reduction_with(&parts, &r.model, &cutoff, 25, ctx)
                });
                match report {
                    Ok(report) => {
                        tel.counters.factorizations += report.sweep_counts.factorizations;
                        tel.counters.refactorizations += report.sweep_counts.refactorizations;
                        eprintln!(
                            "rcfit: verify: worst in-band error {:.3} % (tolerance {:.1} %), overall {:.3} %: {}",
                            report.worst_in_band * 100.0,
                            report.tolerance * 100.0,
                            report.worst_overall * 100.0,
                            if report.passes() { "PASS" } else { "FAIL" }
                        );
                        eprintln!(
                            "rcfit: verify: exact sweep used {} factorization(s) + {} refactorization(s)",
                            report.sweep_counts.factorizations, report.sweep_counts.refactorizations
                        );
                    }
                    Err(e) => eprintln!("rcfit: verify failed to run: {e}"),
                }
            }
        }
    }

    let (rendered, element_count) = render_reduced(&prep, &red, "rcfit", args.sparsify, &mut tel);
    eprintln!("rcfit: reduced network realized with {element_count} elements");
    tel.time("write", || match &args.output {
        Some(path) => std::fs::write(path, &rendered).map_err(|e| PactError::io(path, &e)),
        None => {
            print!("{rendered}");
            Ok(())
        }
    })?;

    if args.trace {
        eprint!("{}", tel.render_trace());
    }
    if let Some(path) = &args.log_json {
        let mut doc = tel.to_json().render();
        doc.push('\n');
        std::fs::write(path, doc).map_err(|e| PactError::io(path, &e))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rcfit: error [{}]: {e}", e.code());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact::EigenSelect;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    fn eigen_select(args: &Args) -> EigenSelect {
        deck_options(args).eigen_select()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_args(&argv(&[
            "in.sp",
            "-o",
            "out.sp",
            "--fmax",
            "3g",
            "--tol",
            "0.1",
            "--sparsify",
            "1e-6",
            "--port",
            "nodeA",
            "--port",
            "nodeB",
            "--dense",
            "--stats",
            "--components",
            "--verify",
            "--trace",
            "--log-json",
            "t.json",
            "--strict-pivots",
        ]))
        .unwrap();
        assert_eq!(a.inputs, vec!["in.sp"]);
        assert_eq!(a.output.as_deref(), Some("out.sp"));
        assert_eq!(a.f_max, 3e9);
        assert_eq!(a.tolerance, 0.1);
        assert_eq!(a.sparsify, 1e-6);
        assert_eq!(a.extra_ports, vec!["nodeA", "nodeB"]);
        assert!(a.dense && a.stats && a.components && a.verify);
        assert!(a.trace && a.strict_pivots);
        assert_eq!(a.log_json.as_deref(), Some("t.json"));
    }

    #[test]
    fn defaults_are_sane() {
        let a = parse_args(&argv(&["deck.sp"])).unwrap();
        assert_eq!(a.f_max, 1e9);
        assert_eq!(a.tolerance, 0.05);
        assert!(!a.dense);
        assert!(a.output.is_none());
        assert!(!a.trace && !a.strict_pivots);
        assert!(a.log_json.is_none());
    }

    #[test]
    fn missing_input_is_usage_error() {
        assert!(parse_args(&argv(&["--stats"])).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn unknown_flag_is_error() {
        let e = parse_args(&argv(&["deck.sp", "--frobnicate"])).unwrap_err();
        assert!(e.contains("unknown argument"));
    }

    #[test]
    fn flag_missing_value_is_error() {
        assert!(parse_args(&argv(&["deck.sp", "--fmax"])).is_err());
        assert!(parse_args(&argv(&["deck.sp", "--tol", "abc"])).is_err());
        assert!(parse_args(&argv(&["deck.sp", "--log-json"])).is_err());
    }

    #[test]
    fn spice_units_accepted_for_fmax() {
        let a = parse_args(&argv(&["x.sp", "--fmax", "500meg"])).unwrap();
        assert_eq!(a.f_max, 5e8);
    }

    #[test]
    fn threads_flag_parses_and_validates() {
        let a = parse_args(&argv(&["x.sp", "--threads", "4"])).unwrap();
        assert_eq!(a.threads, Some(4));
        let d = parse_args(&argv(&["x.sp"])).unwrap();
        assert_eq!(d.threads, None);
        assert!(parse_args(&argv(&["x.sp", "--threads", "0"])).is_err());
        assert!(parse_args(&argv(&["x.sp", "--threads", "many"])).is_err());
    }

    #[test]
    fn hier_flags_parse_and_validate() {
        let a = parse_args(&argv(&[
            "x.sp",
            "--hier",
            "--block-size",
            "500",
            "--max-depth",
            "8",
        ]))
        .unwrap();
        assert!(a.hier);
        assert_eq!(a.block_size, 500);
        assert_eq!(a.max_depth, 8);
        let d = parse_args(&argv(&["x.sp"])).unwrap();
        assert!(!d.hier);
        assert_eq!(d.block_size, DEFAULT_BLOCK_SIZE);
        assert_eq!(d.max_depth, DEFAULT_MAX_DEPTH);
        assert!(parse_args(&argv(&["x.sp", "--block-size", "0"])).is_err());
        assert!(parse_args(&argv(&["x.sp", "--block-size", "lots"])).is_err());
        assert!(parse_args(&argv(&["x.sp", "--max-depth"])).is_err());
    }

    #[test]
    fn strategy_and_points_flags_parse_and_validate() {
        let a = parse_args(&argv(&[
            "x.sp",
            "--strategy",
            "multipoint",
            "--points",
            "500meg,-2g,1e6",
        ]))
        .unwrap();
        assert_eq!(a.strategy, Some(StrategyArg::Multipoint));
        assert_eq!(a.points.as_deref(), Some(&[5e8, -2e9, 1e6][..]));
        let opts = deck_options(&a).reduce_options().unwrap();
        assert!(matches!(
            opts.strategy,
            pact::ReduceStrategy::Multipoint { .. }
        ));
        assert_eq!(
            opts.expansion_points.as_deref(),
            Some(&[5e8, -2e9, 1e6][..])
        );

        // Explicit strategy beats the --hier alias.
        let b = parse_args(&argv(&["x.sp", "--hier", "--strategy", "flat"])).unwrap();
        let opts = deck_options(&b).reduce_options().unwrap();
        assert!(matches!(opts.strategy, pact::ReduceStrategy::Flat));

        assert!(parse_args(&argv(&["x.sp", "--strategy", "magic"])).is_err());
        assert!(parse_args(&argv(&["x.sp", "--points", "1g"])).is_err());
        let e = parse_args(&argv(&[
            "x.sp",
            "--strategy",
            "multipoint",
            "--points",
            "0",
        ]))
        .unwrap_err();
        assert!(e.contains("finite and nonzero"));
        assert!(parse_args(&argv(&[
            "x.sp",
            "--strategy",
            "multipoint",
            "--points",
            "1g,,2g",
        ]))
        .is_err());
    }

    #[test]
    fn extract_and_collapse_flags_parse_and_validate() {
        let a = parse_args(&argv(&[
            "x.sp",
            "--extract",
            "--collapse-chains",
            "--chain-tol",
            "1e-4",
        ]))
        .unwrap();
        assert!(a.extract && a.collapse_chains);
        assert_eq!(a.chain_tol, Some(1e-4));
        let o = deck_options(&a);
        assert!(o.extract && o.collapse_chains);
        assert_eq!(o.chain_tol, 1e-4);

        let d = parse_args(&argv(&["x.sp"])).unwrap();
        assert!(!d.extract && !d.collapse_chains);
        assert_eq!(deck_options(&d).chain_tol, DEFAULT_CHAIN_TOL);

        let e = parse_args(&argv(&["x.sp", "--chain-tol", "1e-4"])).unwrap_err();
        assert!(e.contains("--collapse-chains"));
        assert!(parse_args(&argv(&["x.sp", "--collapse-chains", "--chain-tol", "0"])).is_err());
        assert!(parse_args(&argv(&["x.sp", "--collapse-chains", "--chain-tol", "much"])).is_err());
        assert!(parse_args(&argv(&["x.sp", "--chain-tol"])).is_err());
    }

    #[test]
    fn eigen_flag_parses_and_resolves() {
        let a = parse_args(&argv(&["x.sp", "--eigen", "auto"])).unwrap();
        assert_eq!(a.eigen, Some(EigenArg::Auto));
        assert!(matches!(eigen_select(&a), EigenSelect::Auto));
        let a = parse_args(&argv(&["x.sp", "--eigen", "dense"])).unwrap();
        assert!(matches!(eigen_select(&a), EigenSelect::Dense));
        let a = parse_args(&argv(&["x.sp", "--eigen", "lanczos"])).unwrap();
        assert!(matches!(eigen_select(&a), EigenSelect::Lanczos(_)));
        let a = parse_args(&argv(&["x.sp", "--eigen", "lowrank"])).unwrap();
        assert!(matches!(eigen_select(&a), EigenSelect::LowRank));
        assert!(parse_args(&argv(&["x.sp", "--eigen", "magic"])).is_err());
        assert!(parse_args(&argv(&["x.sp", "--eigen"])).is_err());
    }

    #[test]
    fn dense_flag_keeps_lowrank_semantics_and_eigen_wins() {
        // Bare --dense is the historical alias for the low-rank path.
        let a = parse_args(&argv(&["x.sp", "--dense"])).unwrap();
        assert!(matches!(eigen_select(&a), EigenSelect::LowRank));
        // Default (no flag) stays Lanczos.
        let d = parse_args(&argv(&["x.sp"])).unwrap();
        assert!(matches!(eigen_select(&d), EigenSelect::Lanczos(_)));
        // An explicit --eigen overrides --dense.
        let b = parse_args(&argv(&["x.sp", "--dense", "--eigen", "dense"])).unwrap();
        assert!(matches!(eigen_select(&b), EigenSelect::Dense));
    }

    #[test]
    fn multiple_decks_parse_but_reject_single_output_flags() {
        let a = parse_args(&argv(&["a.sp", "b.sp", "c.sp"])).unwrap();
        assert_eq!(a.inputs, vec!["a.sp", "b.sp", "c.sp"]);
        let e = parse_args(&argv(&["a.sp", "b.sp", "-o", "out.sp"])).unwrap_err();
        assert!(e.contains("single input deck"));
        let e = parse_args(&argv(&["a.sp", "b.sp", "--log-json", "t.json"])).unwrap_err();
        assert!(e.contains("single input deck"));
    }

    #[test]
    fn run_reports_typed_error_for_missing_input() {
        let args = parse_args(&argv(&["/nonexistent/deck.sp"])).unwrap();
        match run(&args) {
            Err(e) => assert_eq!(e.code(), "io"),
            Ok(()) => panic!("expected an I/O error"),
        }
    }
}
