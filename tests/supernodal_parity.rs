//! Scalar-vs-supernodal Cholesky kernel parity.
//!
//! The supernodal blocked kernel is a performance representation of the
//! same LDLᵀ factorization the scalar up-looking reference computes:
//! both share the postordered fill-reducing permutation, so retained
//! poles must agree to floating-point roundoff on every generator
//! family, every strategy, every eigen backend, every thread count, and
//! both fresh and through a warm session's numeric-only refactor.

use pact::{
    CholKernel, CutoffSpec, EigenSelect, ReduceOptions, ReduceStrategy, Reduction, ReductionSession,
};
use pact_gen::{
    inverter_pair_deck, power_grid_deck, substrate_mesh, LineSpec, MeshSpec, PowerGridSpec,
};
use pact_lanczos::LanczosConfig;
use pact_netlist::{extract_rc, RcNetwork};

/// Required agreement of retained poles between the kernels, relative
/// to the spectral scale (the largest retained pole magnitude). The two
/// kernels compute the same factorization up to summation order inside
/// the dense panels, i.e. `E' + E` with `‖E‖` roundoff-sized, and Weyl's
/// inequality bounds every eigenvalue shift by `‖E‖` — an absolute
/// bound, which is why tail poles are gated against the spectral scale
/// rather than their own (tiny) magnitude.
const POLE_REL_TOL: f64 = 1e-10;

fn mesh_fixture() -> RcNetwork {
    substrate_mesh(&MeshSpec {
        nx: 10,
        ny: 10,
        nz: 4,
        num_contacts: 16,
        ..MeshSpec::table2()
    })
}

fn powergrid_fixture() -> RcNetwork {
    let deck = power_grid_deck(&PowerGridSpec {
        nx: 12,
        ny: 12,
        num_taps: 8,
        ..PowerGridSpec::default()
    });
    extract_rc(&deck.netlist, &[]).unwrap().network
}

fn line_fixture() -> RcNetwork {
    let deck = inverter_pair_deck(&LineSpec {
        segments: 100,
        ..LineSpec::default()
    });
    extract_rc(&deck, &[]).unwrap().network
}

fn families() -> Vec<(&'static str, RcNetwork, f64, usize)> {
    vec![
        ("mesh", mesh_fixture(), 2e9, 48),
        // The decap grid's poles sit far above rail bandwidth; 100 GHz
        // retains a few dozen so the parity check has something to bite.
        ("powergrid", powergrid_fixture(), 1e11, 24),
        ("line", line_fixture(), 5e9, 20),
    ]
}

fn options(fmax: f64, threads: usize, strategy: ReduceStrategy) -> ReduceOptions {
    let mut opts = ReduceOptions::new(CutoffSpec::new(fmax, 0.05).unwrap());
    opts.threads = Some(threads);
    opts.strategy = strategy;
    opts
}

fn strategies(max_block: usize) -> Vec<(&'static str, ReduceStrategy)> {
    vec![
        ("flat", ReduceStrategy::Flat),
        (
            "hier",
            ReduceStrategy::Hierarchical {
                max_block,
                max_depth: 16,
            },
        ),
    ]
}

fn assert_pole_parity(sup: &Reduction, sca: &Reduction, what: &str) {
    assert_eq!(
        sup.model.lambdas.len(),
        sca.model.lambdas.len(),
        "{what}: kernels retained different pole counts"
    );
    let scale = sup
        .model
        .lambdas
        .iter()
        .chain(&sca.model.lambdas)
        .fold(f64::MIN_POSITIVE, |m, l| m.max(l.abs()));
    for (k, (a, b)) in sup.model.lambdas.iter().zip(&sca.model.lambdas).enumerate() {
        let rel = (a - b).abs() / scale;
        assert!(
            rel <= POLE_REL_TOL,
            "{what}: pole {k} deviates by {rel:.3e} of the spectral scale ({a} vs {b})"
        );
    }
}

/// Fresh reductions: every family × strategy × eigen backend, scalar vs
/// supernodal, with the supernodal telemetry sanity-checked on the flat
/// path (hier aggregates counters across sub-blocks).
#[test]
fn kernels_agree_on_retained_poles_fresh() {
    for (label, net, fmax, max_block) in families() {
        for (sname, strategy) in strategies(max_block) {
            for (ename, eigen) in [
                ("laso", EigenSelect::Lanczos(LanczosConfig::default())),
                ("dense", EigenSelect::LowRank),
            ] {
                let mut opts = options(fmax, 1, strategy);
                opts.eigen_backend = eigen.clone();
                opts.chol_kernel = CholKernel::Supernodal;
                let sup = pact::reduce_network(&net, &opts).unwrap();
                opts.chol_kernel = CholKernel::Scalar;
                let sca = pact::reduce_network(&net, &opts).unwrap();
                let what = format!("{label}/{sname}/{ename}");
                assert!(
                    !sup.model.lambdas.is_empty(),
                    "{what}: fixture retains no poles"
                );
                assert!(
                    sup.telemetry.counters.supernode_count > 0,
                    "{what}: supernodal run reported no supernodes"
                );
                assert_eq!(
                    sca.telemetry.counters.supernode_count, 0,
                    "{what}: scalar run reported supernodes"
                );
                assert_pole_parity(&sup, &sca, &what);
            }
        }
    }
}

/// Warm sessions: the second reduction of the same deck goes through the
/// cached symbolic analysis and the numeric-only `refactor` path of each
/// kernel. Warm must be bit-identical to cold within a kernel, and the
/// cross-kernel pole parity must survive the warm path.
#[test]
fn kernels_agree_after_warm_session_refactor() {
    for (label, net, fmax, max_block) in families() {
        for (sname, strategy) in strategies(max_block) {
            let mut warm = Vec::new();
            for kernel in [CholKernel::Supernodal, CholKernel::Scalar] {
                let mut opts = options(fmax, 1, strategy);
                opts.chol_kernel = kernel;
                let mut session = ReductionSession::new(opts);
                let cold = session.reduce_network(&net).unwrap();
                let rewarm = session.reduce_network(&net).unwrap();
                let what = format!("{label}/{sname}/{kernel:?}");
                assert_eq!(
                    cold.model.lambdas, rewarm.model.lambdas,
                    "{what}: warm refactor changed the poles"
                );
                assert_eq!(
                    cold.model.a1, rewarm.model.a1,
                    "{what}: warm refactor changed A'"
                );
                warm.push(rewarm);
            }
            assert_pole_parity(&warm[0], &warm[1], &format!("{label}/{sname}/warm"));
        }
    }
}

/// Thread counts: parity holds at 1/2/4/8 threads, and each kernel is
/// itself bit-identical across thread counts (the blocked solves
/// partition lanes deterministically).
#[test]
fn kernels_agree_across_thread_counts() {
    for (label, net, fmax, max_block) in families() {
        for (sname, strategy) in strategies(max_block) {
            let mut base: Option<(Reduction, Reduction)> = None;
            for threads in [1usize, 2, 4, 8] {
                let mut opts = options(fmax, threads, strategy);
                opts.chol_kernel = CholKernel::Supernodal;
                let sup = pact::reduce_network(&net, &opts).unwrap();
                opts.chol_kernel = CholKernel::Scalar;
                let sca = pact::reduce_network(&net, &opts).unwrap();
                let what = format!("{label}/{sname}/threads={threads}");
                assert_pole_parity(&sup, &sca, &what);
                match &base {
                    None => base = Some((sup, sca)),
                    Some((bsup, bsca)) => {
                        assert_eq!(
                            bsup.model.lambdas, sup.model.lambdas,
                            "{what}: supernodal poles vary with thread count"
                        );
                        assert_eq!(
                            bsca.model.lambdas, sca.model.lambdas,
                            "{what}: scalar poles vary with thread count"
                        );
                        assert_eq!(
                            bsup.telemetry.counters, sup.telemetry.counters,
                            "{what}: supernodal counters vary with thread count"
                        );
                    }
                }
            }
        }
    }
}
