//! Fault injection: the daemon answers typed errors and stays alive.
//!
//! Three failure classes from the serving checklist: a client that
//! disconnects mid-stream with a response still in flight, a poisoned
//! deck whose element value overflows to infinity, and requests that
//! trip ordinary [`pact::PactError`]s (parse errors, bad paths, invalid
//! cutoffs). In every case the daemon must answer a typed error (or
//! swallow the undeliverable response and count the disconnect), keep
//! serving, and keep its warm sessions warm.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pact::json::Value;
use pact_serve::{serve_unix, Daemon, ReplySink, ServeConfig};

const GOOD_DECK: &str = "* good\\nVdrv in 0 1\\nR1 in a 1k\\nR2 a out 1k\\nC1 a 0 1p\\nC2 out 0 2p\\nIload out 0 1m\\n.end\\n";

fn test_daemon() -> Daemon {
    Daemon::new(ServeConfig {
        workers: 2,
        queue_cap: 16,
        sessions_per_worker: 4,
        patterns_per_session: 8,
        max_deck_bytes: 1 << 20,
    })
}

fn collector() -> (ReplySink, Arc<Mutex<Vec<String>>>) {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink_lines = Arc::clone(&lines);
    let sink: ReplySink = Arc::new(move |l: &str| sink_lines.lock().unwrap().push(l.to_owned()));
    (sink, lines)
}

fn error_code(doc: &Value) -> String {
    assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .expect("error responses carry a code")
        .to_owned()
}

#[test]
fn typed_errors_keep_the_daemon_alive_and_sessions_warm() {
    let daemon = test_daemon();
    let (sink, lines) = collector();
    let good = format!(r#"{{"id":"warm-1","deck":"{GOOD_DECK}"}}"#);
    daemon.submit(&good, &sink);

    // A deck whose resistor value overflows f64 to infinity.
    let poisoned = r#"{"id":"poison","deck":"* bad\nV1 a 0 1\nR1 a 0 1e999\n.end\n"}"#;
    daemon.submit(poisoned, &sink);
    // A deck that does not parse at all.
    let unparsable = r#"{"id":"noparse","deck":"* bad\nQ1 a b c model\n.end\n"}"#;
    daemon.submit(unparsable, &sink);
    // A server-side path that does not exist.
    let bad_path = r#"{"id":"nofile","path":"/nonexistent/deck.sp"}"#;
    daemon.submit(bad_path, &sink);
    // Options that cannot form a valid cutoff.
    let bad_cutoff = format!(r#"{{"id":"nocut","deck":"{GOOD_DECK}","options":{{"fmax":-1.0}}}}"#);
    daemon.submit(&bad_cutoff, &sink);

    // Same deck again: the worker that survived all of the above must
    // still hold the warm session from "warm-1".
    let again = format!(r#"{{"id":"warm-2","deck":"{GOOD_DECK}"}}"#);
    daemon.submit(&again, &sink);

    let counters = daemon.shutdown();
    let docs: std::collections::BTreeMap<String, Value> = lines
        .lock()
        .unwrap()
        .iter()
        .map(|l| {
            let d = Value::parse(l).unwrap();
            (d.get("id").unwrap().as_str().unwrap().to_owned(), d)
        })
        .collect();
    assert_eq!(docs.len(), 6, "every request answered exactly once");

    assert_eq!(error_code(&docs["poison"]), "network");
    assert_eq!(error_code(&docs["noparse"]), "parse");
    assert_eq!(error_code(&docs["nofile"]), "io");
    assert_eq!(error_code(&docs["nocut"]), "cutoff");

    assert_eq!(docs["warm-1"].get("ok"), Some(&Value::Bool(true)));
    assert_eq!(docs["warm-1"].get("session_hit"), Some(&Value::Bool(false)));
    assert_eq!(docs["warm-2"].get("ok"), Some(&Value::Bool(true)));
    assert_eq!(
        docs["warm-2"].get("session_hit"),
        Some(&Value::Bool(true)),
        "faults in between must not cool the warm session"
    );

    assert_eq!(counters.ok.load(AtomicOrdering::Relaxed), 2);
    assert_eq!(counters.errors.load(AtomicOrdering::Relaxed), 4);
    assert_eq!(counters.worker_panics.load(AtomicOrdering::Relaxed), 0);
}

/// Polls `pred` until it holds or `timeout` elapses.
fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    pred()
}

#[test]
fn mid_stream_disconnect_is_counted_and_survived() {
    let dir = std::env::temp_dir().join(format!("rcfitd-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("rcfitd.sock");
    let daemon = test_daemon();

    std::thread::scope(|scope| {
        let daemon_ref = &daemon;
        let sock_path = sock.clone();
        scope.spawn(move || serve_unix(daemon_ref, &sock_path).expect("socket serves"));
        assert!(
            wait_until(Duration::from_secs(5), || sock.exists()),
            "daemon bound its socket"
        );

        // Client 1 sends a reduce request and hangs up immediately; the
        // worker's response write must fail and be counted, nothing more.
        {
            let mut c = UnixStream::connect(&sock).unwrap();
            writeln!(c, r#"{{"id":"gone","deck":"{GOOD_DECK}"}}"#).unwrap();
            c.flush().unwrap();
            c.shutdown(std::net::Shutdown::Both).unwrap();
        }
        assert!(
            wait_until(Duration::from_secs(10), || {
                daemon.counters().disconnects.load(AtomicOrdering::Relaxed) >= 1
            }),
            "the dead client's failed response write is counted"
        );

        // Client 2 gets a full round trip on the same topology — and the
        // session warmed for the dead client serves it.
        let mut c2 = UnixStream::connect(&sock).unwrap();
        writeln!(c2, r#"{{"id":"alive","deck":"{GOOD_DECK}"}}"#).unwrap();
        c2.flush().unwrap();
        let mut reader = BufReader::new(c2.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let doc = Value::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("id").unwrap().as_str(), Some("alive"));
        assert_eq!(
            doc.get("session_hit"),
            Some(&Value::Bool(true)),
            "the disconnect must not cool the warm session"
        );

        writeln!(c2, r#"{{"id":"bye","op":"shutdown"}}"#).unwrap();
        c2.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let ack = Value::parse(&line).unwrap();
        assert_eq!(ack.get("shutdown"), Some(&Value::Bool(true)));
    });

    let counters = daemon.shutdown();
    assert_eq!(counters.ok.load(AtomicOrdering::Relaxed), 2);
    assert_eq!(counters.disconnects.load(AtomicOrdering::Relaxed), 1);
    assert!(!sock.exists(), "socket file cleaned up on exit");
    let _ = std::fs::remove_dir_all(&dir);
}
