//! End-to-end integration: SPICE text in → PACT reduction → SPICE text
//! out → re-parse → simulate, comparing original and reduced circuits in
//! both transient and AC — the complete RCFIT pipeline of the paper's
//! Figure 1 exercised across every crate.

use pact::{CutoffSpec, EigenSelect, ReduceOptions};
use pact_circuit::{log_frequencies, AcExcitation, Circuit};
use pact_lanczos::LanczosConfig;
use pact_netlist::{extract_rc, parse, splice_reduced};
use pact_sparse::Ordering;

/// A two-net interconnect deck with inverters, exercising parser,
/// extraction, reduction, splicing and simulation together.
fn interconnect_deck() -> String {
    let mut deck = String::from(
        "\
* two nets
.model nch nmos (vto=0.7 kp=110u lambda=0.04)
.model pch pmos (vto=-0.9 kp=40u lambda=0.05)
Vdd vdd 0 5
Vin in 0 pulse(0 5 0.5n 0.1n 0.1n 3n 8n)
MN0 neta in 0 0 nch w=20u l=1u
MP0 neta in vdd vdd pch w=40u l=1u
",
    );
    // net A: 30-segment line to a receiver.
    for i in 0..30 {
        let a = if i == 0 {
            "neta".to_owned()
        } else {
            format!("a{i}")
        };
        let b = if i == 29 {
            "enda".to_owned()
        } else {
            format!("a{}", i + 1)
        };
        deck.push_str(&format!("Ra{i} {a} {b} 8\nCa{i} {b} 0 40f\n"));
    }
    deck.push_str("MN1 netb enda 0 0 nch w=4u l=1u\nMP1 netb enda vdd vdd pch w=8u l=1u\n");
    // net B: 20-segment line to the output.
    for i in 0..20 {
        let a = if i == 0 {
            "netb".to_owned()
        } else {
            format!("b{i}")
        };
        let b = if i == 19 {
            "out".to_owned()
        } else {
            format!("b{}", i + 1)
        };
        deck.push_str(&format!("Rb{i} {a} {b} 10\nCb{i} {b} 0 30f\n"));
    }
    // A receiver at `out` makes it a port node, so it survives reduction
    // and stays observable.
    deck.push_str("MN2 y2 out 0 0 nch w=2u l=1u\nMP2 y2 out vdd vdd pch w=4u l=1u\n");
    deck.push_str("Cl out 0 15f\n.tran 20p 8n\n.end\n");
    deck
}

#[test]
fn spice_in_spice_out_transient_matches() {
    let original = parse(&interconnect_deck()).expect("parse");
    let ex = extract_rc(&original, &[]).expect("extract");
    assert!(ex.network.num_internal() >= 45);

    let opts = ReduceOptions::new(CutoffSpec::new(3e9, 0.05).expect("spec"));
    let red = pact::reduce_network(&ex.network, &opts).expect("reduce");
    assert!(red.model.num_poles() < ex.network.num_internal() / 4);
    assert!(red.model.is_passive(1e-8));

    // Round-trip through SPICE text.
    let reduced = splice_reduced(&original, red.model.to_netlist_elements("rf", 1e-9));
    let text = reduced.to_string();
    let reparsed = parse(&text).expect("reparse rcfit output");

    let run = |nl: &pact_netlist::Netlist| {
        let ckt = Circuit::from_netlist(nl).expect("compile");
        let tr = ckt.transient(20e-12, 8e-9).expect("tran");
        (tr.times.clone(), tr.voltage("out").expect("v(out)"))
    };
    let (t0, v0) = run(&original);
    let (t1, v1) = run(&reparsed);

    let mut worst: f64 = 0.0;
    for (k, &t) in t0.iter().enumerate() {
        let mut vi = *v1.last().unwrap();
        for kk in 1..t1.len() {
            if t <= t1[kk] {
                let f = (t - t1[kk - 1]) / (t1[kk] - t1[kk - 1]).max(1e-30);
                vi = v1[kk - 1] + f * (v1[kk] - v1[kk - 1]);
                break;
            }
        }
        worst = worst.max((vi - v0[k]).abs());
    }
    assert!(
        worst < 0.25,
        "reduced transient deviates by {worst} V on a 5 V swing"
    );
}

#[test]
fn reduced_ac_matches_below_fmax() {
    let original = parse(&interconnect_deck()).expect("parse");
    let ex = extract_rc(&original, &[]).expect("extract");
    let fmax = 2e9;
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(fmax, 0.05).expect("spec"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::Rcm,
        dense_threshold: 0,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let red = pact::reduce_network(&ex.network, &opts).expect("reduce");
    let reduced = splice_reduced(&original, red.model.to_netlist_elements("rf", 1e-9));

    // The observed transfer runs through two inverter gain stages, which
    // amplify the network's ≤5 % admittance error; check well below fmax
    // with a correspondingly relaxed bound.
    let freqs = log_frequencies(9, 1e7, fmax / 2.0);
    let run = |nl: &pact_netlist::Netlist| {
        let ckt = Circuit::from_netlist(nl).expect("compile");
        let ac = ckt
            .ac_sweep(&freqs, &AcExcitation::VSource("Vin".into()))
            .expect("ac");
        ac.voltage("out").expect("v(out)")
    };
    let z0 = run(&original);
    let z1 = run(&reduced);
    for (k, (a, b)) in z0.iter().zip(&z1).enumerate() {
        let scale = a.abs().max(1e-6);
        assert!(
            (*a - *b).abs() / scale < 0.15,
            "AC mismatch at {:.3e} Hz: {} vs {}",
            freqs[k],
            a.abs(),
            b.abs()
        );
    }
}

#[test]
fn rcfit_cli_flow_is_reproducible() {
    // Exercise determinism: two reductions of the same deck are identical.
    let original = parse(&interconnect_deck()).expect("parse");
    let ex = extract_rc(&original, &[]).expect("extract");
    let opts = ReduceOptions::new(CutoffSpec::new(1e9, 0.05).expect("spec"));
    let a = pact::reduce_network(&ex.network, &opts).expect("reduce a");
    let b = pact::reduce_network(&ex.network, &opts).expect("reduce b");
    assert_eq!(a.model.num_poles(), b.model.num_poles());
    for (x, y) in a.model.lambdas.iter().zip(&b.model.lambdas) {
        assert_eq!(x, y, "reduction must be deterministic");
    }
    let ta = splice_reduced(&original, a.model.to_netlist_elements("r", 1e-9)).to_string();
    let tb = splice_reduced(&original, b.model.to_netlist_elements("r", 1e-9)).to_string();
    assert_eq!(ta, tb);
}
