//! Multipoint reduction equivalence and passivity.
//!
//! The `pact::multipoint` backend must (1) degenerate to flat PACT when
//! no shifted expansion points are given — the spectral basis alone
//! spans flat's retained eigenspace, so poles and port responses agree
//! to rounding — (2) stay provably passive (congruence projection keeps
//! `G''` and `C''` PSD) with shifted points in play, and (3) honour the
//! repo-wide determinism contract: bit-identical results across thread
//! counts and across warm/cold sessions.

use pact::{CutoffSpec, ReduceOptions, ReduceStrategy, Reduction, ReductionSession};
use pact_gen::{
    inverter_pair_deck, power_grid_deck, substrate_mesh, LineSpec, MeshSpec, PowerGridSpec,
};
use pact_netlist::{extract_rc, RcNetwork};
use pact_sparse::Scalar;

/// Relative agreement required between flat and base-only multipoint.
const REL_TOL: f64 = 1e-8;

fn mesh_fixture() -> RcNetwork {
    substrate_mesh(&MeshSpec {
        nx: 10,
        ny: 10,
        nz: 4,
        num_contacts: 16,
        ..MeshSpec::table2()
    })
}

fn powergrid_fixture() -> RcNetwork {
    let deck = power_grid_deck(&PowerGridSpec {
        nx: 12,
        ny: 12,
        num_taps: 8,
        ..PowerGridSpec::default()
    });
    extract_rc(&deck.netlist, &[]).unwrap().network
}

fn line_fixture() -> RcNetwork {
    let deck = inverter_pair_deck(&LineSpec {
        segments: 100,
        ..LineSpec::default()
    });
    extract_rc(&deck, &[]).unwrap().network
}

fn families() -> Vec<(&'static str, RcNetwork, f64)> {
    vec![
        ("mesh", mesh_fixture(), 2e9),
        ("powergrid", powergrid_fixture(), 1e9),
        ("line", line_fixture(), 5e9),
    ]
}

fn options(fmax: f64, threads: usize, strategy: ReduceStrategy) -> ReduceOptions {
    let mut opts = ReduceOptions::new(CutoffSpec::new(fmax, 0.05).unwrap());
    opts.threads = Some(threads);
    opts.strategy = strategy;
    opts
}

fn multipoint(fmax: f64, threads: usize, points: Option<Vec<f64>>) -> ReduceOptions {
    let mut opts = options(fmax, threads, ReduceStrategy::Multipoint { num_points: 2 });
    opts.expansion_points = points;
    opts
}

fn assert_bits_equal(base: &Reduction, other: &Reduction, what: &str) {
    assert_eq!(base.model.a1, other.model.a1, "{what}: A' differs");
    assert_eq!(base.model.b1, other.model.b1, "{what}: B' differs");
    assert_eq!(
        base.model.lambdas, other.model.lambdas,
        "{what}: poles differ"
    );
    assert_eq!(base.model.r2, other.model.r2, "{what}: R'' differs");
}

#[test]
fn base_only_multipoint_matches_flat_to_rounding() {
    for (label, net, fmax) in families() {
        let flat = ReductionSession::new(options(fmax, 1, ReduceStrategy::Flat))
            .reduce_network(&net)
            .unwrap();
        // An explicit `{0}` point list filters to no shifted points (the
        // s = 0 block is always present), so only the spectral basis
        // remains and the flat keep rule applies.
        let mp = ReductionSession::new(multipoint(fmax, 1, Some(vec![0.0])))
            .reduce_network(&net)
            .unwrap();
        assert_eq!(mp.model.a1, flat.model.a1, "{label}: A' differs");
        assert_eq!(mp.model.b1, flat.model.b1, "{label}: B' differs");
        assert_eq!(
            mp.model.num_poles(),
            flat.model.num_poles(),
            "{label}: pole counts differ"
        );
        for (a, b) in flat.model.lambdas.iter().zip(&mp.model.lambdas) {
            assert!(
                (a - b).abs() <= REL_TOL * a.abs().max(1e-300),
                "{label}: pole {a:.12e} (flat) vs {b:.12e} (multipoint)"
            );
        }
        // Port responses are invariant to eigenvector sign flips, so
        // compare Y(s) on a sweep instead of R'' entries.
        for f in [fmax / 100.0, fmax / 10.0, fmax / 3.0, fmax] {
            let yf = flat.model.y_at(f);
            let ym = mp.model.y_at(f);
            let scale = (0..yf.nrows())
                .flat_map(|i| (0..yf.ncols()).map(move |j| (i, j)))
                .map(|(i, j)| yf[(i, j)].modulus())
                .fold(0.0f64, f64::max);
            for i in 0..yf.nrows() {
                for j in 0..yf.ncols() {
                    let d = (yf[(i, j)] - ym[(i, j)]).modulus();
                    assert!(
                        d <= REL_TOL * scale,
                        "{label}: Y({f:.3e})[{i},{j}] differs by {d:.3e} (scale {scale:.3e})"
                    );
                }
            }
        }
    }
}

#[test]
fn multipoint_models_are_passive() {
    for (label, net, fmax) in families() {
        // Auto points (imaginary axis) and an explicit mix including a
        // negative-real-axis shift both have to stay passive.
        for (pname, points) in [
            ("auto", None),
            ("explicit", Some(vec![fmax / 2.0, -fmax / 5.0, 2.0 * fmax])),
        ] {
            let red = ReductionSession::new(multipoint(fmax, 1, points))
                .reduce_network(&net)
                .unwrap();
            let (g_min, c_min) = red.model.passivity_margins().unwrap();
            assert!(
                red.model.is_passive(1e-8),
                "{label}/{pname}: model not passive (λmin(G'')={g_min:.3e}, λmin(C'')={c_min:.3e})"
            );
        }
    }
}

#[test]
fn multipoint_is_bit_identical_across_thread_counts() {
    for (label, net, fmax) in families() {
        let base = ReductionSession::new(multipoint(fmax, 1, None))
            .reduce_network(&net)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let par = ReductionSession::new(multipoint(fmax, threads, None))
                .reduce_network(&net)
                .unwrap();
            assert_bits_equal(&base, &par, &format!("{label} threads={threads}"));
            assert_eq!(
                base.telemetry.counters_json_string(),
                par.telemetry.counters_json_string(),
                "{label} threads={threads}: telemetry differs"
            );
        }
    }
}

#[test]
fn warm_multipoint_session_reproduces_cold_bitwise() {
    for (label, net, fmax) in families() {
        let cold = ReductionSession::new(multipoint(fmax, 1, None))
            .reduce_network(&net)
            .unwrap();
        let mut session = ReductionSession::new(multipoint(fmax, 1, None));
        let first = session.reduce_network(&net).unwrap();
        let warm = session.reduce_network(&net).unwrap();
        assert_bits_equal(&cold, &first, &format!("{label} first"));
        assert_bits_equal(&cold, &warm, &format!("{label} warm"));
        assert_eq!(
            session.cached_lu_patterns(),
            1,
            "{label}: shifted-pencil symbolic analysis not cached"
        );
        // The warm pass replays both cached symbolic analyses (Cholesky
        // and shifted-pencil LU) instead of re-running them.
        assert_eq!(
            warm.telemetry.counters.factorizations, 0,
            "{label}: warm pass re-ran a symbolic analysis"
        );
        assert!(
            warm.telemetry.counters.refactorizations > first.telemetry.counters.refactorizations,
            "{label}: warm pass did not reuse the caches"
        );
    }
}

#[test]
fn multipoint_telemetry_reports_points_and_basis() {
    let net = line_fixture();
    let red = ReductionSession::new(multipoint(5e9, 1, None))
        .reduce_network(&net)
        .unwrap();
    let c = &red.telemetry.counters;
    assert_eq!(c.multipoint_points, 2, "auto selection places two points");
    assert!(c.multipoint_moment_poles > 0, "no shifted candidates");
    assert!(c.multipoint_basis_columns > 0, "empty projection basis");
    assert!(
        red.telemetry
            .eigen_choices
            .iter()
            .any(|e| e.scope == "multipoint:base"),
        "missing base eigen choice"
    );
    assert!(
        red.telemetry
            .eigen_choices
            .iter()
            .any(|e| e.scope == "multipoint:pencil" && e.backend == "dense"),
        "missing pencil eigen choice"
    );
    assert!(red
        .telemetry
        .phases
        .iter()
        .any(|p| p.name == "multipoint_basis"));
    assert!(red
        .telemetry
        .phases
        .iter()
        .any(|p| p.name == "multipoint_project"));
}

#[test]
fn expansion_point_on_a_pole_is_a_typed_error() {
    // A negative-real-axis point is guaranteed to hit a pole somewhere;
    // scan a few candidate shifts near the spectrum until one lands
    // within relief tolerance. Rather than hunt blindly, place the shift
    // *exactly* on a pole: λ̃ of the pencil (D + sE) vanishes at
    // s = −1/λᵢ for each generalized eigenvalue λᵢ of (E, D), and the
    // reduction reports those as pole frequencies fᵢ = 1/(2πλᵢ) — so
    // s = −2πfᵢ is singular by construction.
    let net = line_fixture();
    let flat = ReductionSession::new(options(5e9, 1, ReduceStrategy::Flat))
        .reduce_network(&net)
        .unwrap();
    let pole_hz = flat.model.pole_frequencies()[0];
    let err = ReductionSession::new(multipoint(5e9, 1, Some(vec![-pole_hz])))
        .reduce_network(&net)
        .unwrap_err();
    match err {
        pact::ReduceError::ExpansionPointAtPole { point_hz, .. } => {
            assert_eq!(point_hz, -pole_hz);
        }
        other => panic!("expected ExpansionPointAtPole, got {other:?}"),
    }
}
