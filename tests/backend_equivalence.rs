//! Session/backend refactor equivalence.
//!
//! The `ReductionSession` + `EigenBackend` rework must be invisible in
//! the numbers: every path (flat, hierarchical, matrix-free) produces
//! the same bits as the one-shot entry points, warm sessions reproduce
//! cold sessions exactly, thread count never changes a result, and the
//! dense / Lanczos / auto eigen backends agree on the retained poles to
//! tight relative tolerance on every generator family.

use pact::{
    CutoffSpec, EigenSelect, Partitions, ReduceOptions, ReduceStrategy, Reduction, ReductionSession,
};
use pact_gen::{
    inverter_pair_deck, power_grid_deck, substrate_mesh, LineSpec, MeshSpec, PowerGridSpec,
};
use pact_lanczos::LanczosConfig;
use pact_netlist::{extract_rc, RcNetwork};

/// Relative pole agreement required between eigen backends (matches the
/// CI backend-parity smoke).
const POLE_REL_TOL: f64 = 1e-8;

fn mesh_fixture() -> RcNetwork {
    substrate_mesh(&MeshSpec {
        nx: 10,
        ny: 10,
        nz: 4,
        num_contacts: 16,
        ..MeshSpec::table2()
    })
}

fn powergrid_fixture() -> RcNetwork {
    let deck = power_grid_deck(&PowerGridSpec {
        nx: 12,
        ny: 12,
        num_taps: 8,
        ..PowerGridSpec::default()
    });
    extract_rc(&deck.netlist, &[]).unwrap().network
}

fn line_fixture() -> RcNetwork {
    let deck = inverter_pair_deck(&LineSpec {
        segments: 100,
        ..LineSpec::default()
    });
    extract_rc(&deck, &[]).unwrap().network
}

/// The three generator families with the cutoff and hier block size
/// used throughout the suite.
fn families() -> Vec<(&'static str, RcNetwork, f64, usize)> {
    vec![
        ("mesh", mesh_fixture(), 2e9, 48),
        ("powergrid", powergrid_fixture(), 1e9, 24),
        ("line", line_fixture(), 5e9, 20),
    ]
}

fn options(fmax: f64, threads: usize, strategy: ReduceStrategy) -> ReduceOptions {
    let mut opts = ReduceOptions::new(CutoffSpec::new(fmax, 0.05).unwrap());
    opts.threads = Some(threads);
    opts.strategy = strategy;
    opts
}

fn assert_bits_equal(base: &Reduction, other: &Reduction, what: &str) {
    assert_eq!(base.model.a1, other.model.a1, "{what}: A' differs");
    assert_eq!(base.model.b1, other.model.b1, "{what}: B' differs");
    assert_eq!(
        base.model.lambdas, other.model.lambdas,
        "{what}: poles differ"
    );
    assert_eq!(base.model.r2, other.model.r2, "{what}: R'' differs");
    assert_eq!(
        base.model.port_names, other.model.port_names,
        "{what}: port names differ"
    );
}

#[test]
fn session_matches_one_shot_entry_points_bitwise() {
    for (label, net, fmax, max_block) in families() {
        for (sname, strategy) in [
            ("flat", ReduceStrategy::Flat),
            (
                "hier",
                ReduceStrategy::Hierarchical {
                    max_block,
                    max_depth: 16,
                },
            ),
        ] {
            let opts = options(fmax, 1, strategy);
            let free = pact::reduce_network(&net, &opts).unwrap();
            let mut session = ReductionSession::new(opts);
            let via_session = session.reduce_network(&net).unwrap();
            assert_bits_equal(&free, &via_session, &format!("{label}/{sname}"));
        }
    }
}

#[test]
fn session_reduction_is_bit_identical_across_thread_counts() {
    for (label, net, fmax, max_block) in families() {
        for (sname, strategy) in [
            ("flat", ReduceStrategy::Flat),
            (
                "hier",
                ReduceStrategy::Hierarchical {
                    max_block,
                    max_depth: 16,
                },
            ),
        ] {
            let base = ReductionSession::new(options(fmax, 1, strategy))
                .reduce_network(&net)
                .unwrap();
            for threads in [2usize, 4, 8] {
                let par = ReductionSession::new(options(fmax, threads, strategy))
                    .reduce_network(&net)
                    .unwrap();
                assert_bits_equal(&base, &par, &format!("{label}/{sname} threads={threads}"));
                assert_eq!(
                    base.telemetry.counters_json_string(),
                    par.telemetry.counters_json_string(),
                    "{label}/{sname} threads={threads}: telemetry differs"
                );
            }
        }
    }
}

#[test]
fn warm_session_reproduces_cold_session_bitwise() {
    for (label, net, fmax, max_block) in families() {
        for (sname, strategy) in [
            ("flat", ReduceStrategy::Flat),
            (
                "hier",
                ReduceStrategy::Hierarchical {
                    max_block,
                    max_depth: 16,
                },
            ),
        ] {
            let cold = ReductionSession::new(options(fmax, 1, strategy))
                .reduce_network(&net)
                .unwrap();
            let mut session = ReductionSession::new(options(fmax, 1, strategy));
            let first = session.reduce_network(&net).unwrap();
            let warm = session.reduce_network(&net).unwrap();
            assert_bits_equal(&cold, &first, &format!("{label}/{sname} first"));
            assert_bits_equal(&cold, &warm, &format!("{label}/{sname} warm"));
            // The warm pass replays cached symbolic analyses instead of
            // re-running the ordering.
            assert_eq!(
                warm.telemetry.counters.factorizations, 0,
                "{label}/{sname}: warm pass re-ran symbolic analysis"
            );
            assert!(
                warm.telemetry.counters.refactorizations >= 1,
                "{label}/{sname}: warm pass did not reuse the cache"
            );
        }
    }
}

#[test]
fn reduce_batch_reuses_analysis_and_stays_bitwise_stable() {
    // Eight same-topology decks with different capacitor values: one
    // symbolic analysis serves the whole batch, and every deck's result
    // matches a fresh single-deck session bitwise.
    let base_net = line_fixture();
    let mut decks = Vec::new();
    for k in 0..8 {
        let mut net = base_net.clone();
        let scale = 1.0 + 0.07 * k as f64;
        for c in &mut net.capacitors {
            c.value *= scale;
        }
        decks.push(net);
    }
    let opts = options(5e9, 1, ReduceStrategy::Flat);
    let mut session = ReductionSession::new(opts.clone());
    let batch = session.reduce_batch(&decks).unwrap();
    assert_eq!(batch.len(), decks.len());
    assert_eq!(
        session.cached_patterns(),
        1,
        "same-topology batch must share one symbolic analysis"
    );
    for (k, (net, red)) in decks.iter().zip(&batch).enumerate() {
        let fresh = ReductionSession::new(opts.clone())
            .reduce_network(net)
            .unwrap();
        assert_bits_equal(&fresh, red, &format!("deck {k}"));
    }
}

#[test]
fn matrix_free_session_matches_free_function_bitwise() {
    let net = line_fixture();
    let spec = CutoffSpec::new(5e9, 0.05).unwrap();
    let parts = Partitions::split(&net.stamp());
    let ports: Vec<String> = net.node_names[..net.num_ports].to_vec();
    let solver = pact::PcgSolver::new(&parts.d).unwrap();
    let free = pact::reduce_matrix_free(&parts, &ports, &spec, &solver).unwrap();
    let mut session = ReductionSession::new(ReduceOptions::new(spec));
    let first = session
        .reduce_matrix_free(&parts, &ports, &spec, &solver)
        .unwrap();
    // A second pass on the warm session reuses pooled scratch buffers;
    // the bits must not care.
    let warm = session
        .reduce_matrix_free(&parts, &ports, &spec, &solver)
        .unwrap();
    assert_bits_equal(&free, &first, "matrix-free first");
    assert_bits_equal(&free, &warm, "matrix-free warm");
    let choices = &first.telemetry.eigen_choices;
    assert_eq!(choices.len(), 1);
    assert_eq!(choices[0].backend, "pencil_lanczos");
}

#[test]
fn eigen_backends_agree_on_retained_poles() {
    for (label, net, fmax, _) in families() {
        let mut results = Vec::new();
        for (bname, backend) in [
            ("dense", EigenSelect::Dense),
            ("lanczos", EigenSelect::Lanczos(LanczosConfig::default())),
            ("lowrank", EigenSelect::LowRank),
            ("auto", EigenSelect::Auto),
        ] {
            let mut opts = options(fmax, 1, ReduceStrategy::Flat);
            opts.eigen_backend = backend;
            let red = ReductionSession::new(opts).reduce_network(&net).unwrap();
            results.push((bname, red));
        }
        let (ref_name, reference) = &results[0];
        for (bname, red) in &results[1..] {
            assert_eq!(
                reference.model.num_poles(),
                red.model.num_poles(),
                "{label}: {ref_name} and {bname} retain different pole counts"
            );
            for (a, b) in reference.model.lambdas.iter().zip(&red.model.lambdas) {
                assert!(
                    (a - b).abs() <= POLE_REL_TOL * a.abs().max(1e-300),
                    "{label}: pole {a:.12e} ({ref_name}) vs {b:.12e} ({bname}) \
                     disagrees beyond {POLE_REL_TOL:.1e}"
                );
            }
        }
    }
}

#[test]
fn telemetry_records_backend_per_block() {
    // Flat: one choice. Hier: one per leaf plus the top pass.
    let net = mesh_fixture();
    let flat = ReductionSession::new(options(2e9, 1, ReduceStrategy::Flat))
        .reduce_network(&net)
        .unwrap();
    assert_eq!(flat.telemetry.eigen_choices.len(), 1);
    assert_eq!(flat.telemetry.eigen_choices[0].scope, "flat");

    let hier = ReductionSession::new(options(
        2e9,
        1,
        ReduceStrategy::Hierarchical {
            max_block: 48,
            max_depth: 16,
        },
    ))
    .reduce_network(&net)
    .unwrap();
    let blocks = hier.telemetry.counters.hier_blocks as usize;
    assert!(blocks >= 2, "fixture too small to partition");
    assert_eq!(
        hier.telemetry.eigen_choices.len(),
        blocks + 1,
        "expected one eigen choice per leaf plus the top pass"
    );
    assert!(hier
        .telemetry
        .eigen_choices
        .iter()
        .any(|c| c.scope == "top"));
    assert!(hier
        .telemetry
        .eigen_choices
        .iter()
        .all(|c| c.scope == "top" || c.scope.starts_with("leaf")));
}
