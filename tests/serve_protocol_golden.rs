//! Golden tests for the `rcfitd-v1` wire protocol.
//!
//! Each fixture in `tests/fixtures/serve/` is one request line; the
//! daemon's response is snapshot-asserted below. Error responses carry
//! no timings, so their entire line is asserted exactly — any change to
//! response shape, error codes or wording shows up as a diff here. The
//! valid-deck response embeds telemetry timings, so its *deck payload*
//! is asserted byte-for-byte against `valid_deck.golden.sp` and the
//! envelope fields are checked structurally.

use std::sync::{Arc, Mutex};

use pact::json::Value;
use pact_serve::{Daemon, ReplySink, ServeConfig};

/// Runs one request line through a fresh single-worker daemon and
/// returns the response lines it produced.
fn serve_one(line: &str, max_deck_bytes: usize) -> Vec<String> {
    let daemon = Daemon::new(ServeConfig {
        workers: 1,
        queue_cap: 4,
        sessions_per_worker: 2,
        patterns_per_session: 8,
        max_deck_bytes,
    });
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink_lines = Arc::clone(&lines);
    let sink: ReplySink = Arc::new(move |l: &str| sink_lines.lock().unwrap().push(l.to_owned()));
    daemon.submit(line, &sink);
    daemon.shutdown();
    let out = lines.lock().unwrap().clone();
    out
}

#[test]
fn valid_deck_reduces_to_the_golden_payload() {
    let request = include_str!("fixtures/serve/valid_deck.jsonl");
    let responses = serve_one(request.trim_end(), 1 << 20);
    assert_eq!(responses.len(), 1);
    let doc = Value::parse(&responses[0]).expect("response is valid JSON");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("rcfitd-v1"));
    assert_eq!(doc.get("id").unwrap().as_str(), Some("golden-1"));
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(doc.get("worker").unwrap().as_f64(), Some(0.0));
    assert_eq!(doc.get("session_hit"), Some(&Value::Bool(false)));
    assert_eq!(doc.get("queue_depth").unwrap().as_f64(), Some(0.0));
    // The embedded telemetry document is the rcfit-telemetry-v1 schema.
    let tel = doc.get("telemetry").expect("telemetry embedded");
    assert_eq!(
        tel.get("schema").unwrap().as_str(),
        Some("rcfit-telemetry-v1")
    );
    // The reduced deck is the numerics payload: byte-identical, always.
    let deck = doc.get("deck").unwrap().as_str().unwrap();
    let golden = include_str!("fixtures/serve/valid_deck.golden.sp");
    assert_eq!(deck, golden, "reduced deck drifted from the golden payload");
}

#[test]
fn extract_collapse_deck_reduces_to_the_golden_payload() {
    let request = include_str!("fixtures/serve/extract_collapse.jsonl");
    let responses = serve_one(request.trim_end(), 1 << 20);
    assert_eq!(responses.len(), 1);
    let doc = Value::parse(&responses[0]).expect("response is valid JSON");
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    // The embedded-parasitics counters are part of the response contract:
    // both RC islands were collapsed, then extracted and reduced.
    let counters = doc
        .get("telemetry")
        .and_then(|t| t.get("counters"))
        .expect("telemetry counters embedded");
    let count = |k: &str| counters.get(k).and_then(Value::as_f64).unwrap();
    assert_eq!(count("chains_collapsed"), 2.0);
    assert_eq!(count("nodes_eliminated"), 20.0);
    assert_eq!(count("extract_subnets"), 2.0);
    let deck = doc.get("deck").unwrap().as_str().unwrap();
    let golden = include_str!("fixtures/serve/extract_collapse.golden.sp");
    assert_eq!(deck, golden, "reduced deck drifted from the golden payload");
}

#[test]
fn chain_tol_without_collapse_response_is_golden() {
    let request = include_str!("fixtures/serve/bad_chain_tol.jsonl");
    let responses = serve_one(request.trim_end(), 1 << 20);
    assert_eq!(
        responses,
        vec![include_str!("fixtures/serve/bad_chain_tol.golden.jsonl").trim_end()]
    );
}

#[test]
fn malformed_json_response_is_golden() {
    let request = include_str!("fixtures/serve/malformed.jsonl");
    let responses = serve_one(request.trim_end(), 1 << 20);
    assert_eq!(
        responses,
        vec![include_str!("fixtures/serve/malformed.golden.jsonl").trim_end()]
    );
}

#[test]
fn unknown_option_response_is_golden() {
    let request = include_str!("fixtures/serve/unknown_option.jsonl");
    let responses = serve_one(request.trim_end(), 1 << 20);
    assert_eq!(
        responses,
        vec![include_str!("fixtures/serve/unknown_option.golden.jsonl").trim_end()]
    );
}

#[test]
fn bad_strategy_response_is_golden() {
    let request = include_str!("fixtures/serve/bad_strategy.jsonl");
    let responses = serve_one(request.trim_end(), 1 << 20);
    assert_eq!(
        responses,
        vec![include_str!("fixtures/serve/bad_strategy.golden.jsonl").trim_end()]
    );
}

#[test]
fn bad_points_response_is_golden() {
    let request = include_str!("fixtures/serve/bad_points.jsonl");
    let responses = serve_one(request.trim_end(), 1 << 20);
    assert_eq!(
        responses,
        vec![include_str!("fixtures/serve/bad_points.golden.jsonl").trim_end()]
    );
}

#[test]
fn oversized_deck_response_is_golden() {
    let request = include_str!("fixtures/serve/oversized.jsonl");
    // The cap is configured down to 64 bytes so the fixture stays small.
    let responses = serve_one(request.trim_end(), 64);
    assert_eq!(
        responses,
        vec![include_str!("fixtures/serve/oversized.golden.jsonl").trim_end()]
    );
}
