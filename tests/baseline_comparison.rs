//! Cross-crate comparison of PACT against the Padé baselines on a shared
//! workload — the qualitative claims of the paper's Sections 1 and 4:
//! both methods are accurate at low frequency, both congruence methods
//! are passive, and the Padé basis memory couples to the port count
//! while PACT's does not.

use pact::{CutoffSpec, EigenSelect, Partitions, ReduceOptions};
use pact_baselines::{admittance_moments, block_krylov_reduce, pade_fit};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_sparse::Ordering;

fn mesh(m: usize) -> (pact_netlist::RcNetwork, Partitions, Vec<String>) {
    let net = substrate_mesh(&MeshSpec {
        nx: 10,
        ny: 10,
        nz: 4,
        num_contacts: m,
        ..MeshSpec::table2()
    });
    let parts = Partitions::split(&net.stamp());
    let ports = net.node_names[..net.num_ports].to_vec();
    (net, parts, ports)
}

#[test]
fn pact_and_krylov_agree_at_low_frequency() {
    let (net, parts, ports) = mesh(8);
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(2e9, 0.05).unwrap(),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::Rcm,
        dense_threshold: 0,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let pact_red = pact::reduce_network(&net, &opts).unwrap();
    let kry = block_krylov_reduce(&parts, &ports, 2, Ordering::Rcm).unwrap();
    let full = pact::FullAdmittance::new(&parts);
    for &f in &[1e7, 1e8, 5e8] {
        let exact = full.y_at(f).unwrap();
        let yp = pact_red.model.y_at(f);
        let yk = kry.model.y_at(f);
        let scale = exact[(0, 0)].abs();
        for i in 0..parts.m {
            assert!(
                (yp[(i, i)] - exact[(i, i)]).abs() / scale < 0.05,
                "PACT off at f={f:e}"
            );
            assert!(
                (yk[(i, i)] - exact[(i, i)]).abs() / scale < 0.05,
                "Krylov off at f={f:e}"
            );
        }
    }
}

#[test]
fn both_congruence_methods_are_passive() {
    let (net, parts, ports) = mesh(6);
    let opts = ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap());
    let pact_red = pact::reduce_network(&net, &opts).unwrap();
    let kry = block_krylov_reduce(&parts, &ports, 2, Ordering::Rcm).unwrap();
    assert!(pact_red.model.is_passive(1e-7));
    assert!(kry.model.is_passive(1e-7));
}

#[test]
fn pade_basis_memory_couples_to_ports_pact_does_not() {
    let (net_a, parts_a, ports_a) = mesh(4);
    let (net_b, parts_b, ports_b) = mesh(24);
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(1e9, 0.05).unwrap(),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::Rcm,
        dense_threshold: 0,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let pact_a = pact::reduce_network(&net_a, &opts).unwrap();
    let pact_b = pact::reduce_network(&net_b, &opts).unwrap();
    let kry_a = block_krylov_reduce(&parts_a, &ports_a, 2, Ordering::Rcm).unwrap();
    let kry_b = block_krylov_reduce(&parts_b, &ports_b, 2, Ordering::Rcm).unwrap();
    // Krylov basis grows ~linearly with m…
    assert!(kry_b.basis_vectors >= 4 * kry_a.basis_vectors);
    // …while PACT's retained pole count tracks the spectrum, not m.
    let pa = pact_a.model.num_poles();
    let pb = pact_b.model.num_poles();
    assert!(
        pb <= pa + 3,
        "PACT pole count should not scale with ports: {pa} -> {pb}"
    );
}

#[test]
fn awe_matches_low_order_then_degrades() {
    // The ill-conditioning story of Section 1 on the mesh workload.
    let (_, parts, _) = mesh(4);
    let moments = admittance_moments(&parts, 14, Ordering::Rcm).unwrap();
    let series: Vec<f64> = moments.iter().map(|m| m[(0, 0)]).collect();
    let low = pade_fit(&series, 2).unwrap();
    assert!(low.hankel_condition.is_finite());
    // A low-order fit is accurate at low frequency.
    let full = pact::FullAdmittance::new(&parts);
    let f = 5e7;
    let exact = full.y_at(f).unwrap()[(0, 0)];
    let fit = low.y_at(f);
    assert!((fit - exact).abs() / exact.abs() < 0.05);
    // Higher order: condition number explodes (or outright singular).
    if let Ok(high) = pade_fit(&series, 6) {
        assert!(high.hankel_condition > 100.0 * low.hankel_condition);
    } // a singular Hankel is the same failure mode
}
