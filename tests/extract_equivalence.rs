//! Extraction / re-stitch equivalence: reducing the RC subnetworks
//! *embedded in* a mixed deck must not change what the simulator sees.
//!
//! For every host deck (inverter line, substrate mesh, power grid, and
//! the mixed R/C/L/diode/MOSFET/VCVS acceptance deck) and every
//! reduction strategy (flat, hierarchical, multipoint), the
//! reduced-and-restitched deck's AC sweep and transient waveforms are
//! compared against the unreduced deck at every node the two decks
//! share, to ≤1e-6 of signal scale in-band.
//!
//! The reductions here run with the cutoff placed above every pole of
//! the extracted subnetworks, so the congruence retains the full basis
//! and the reduced realization is the original network in different
//! coordinates — any disagreement beyond roundoff is an extraction,
//! sanitize, or splice bug, not truncation error. (Truncation accuracy
//! has its own budget and is covered by `end_to_end.rs` and the
//! verify-stage tests.)
//!
//! A degenerate host with no RC-only subnetwork must pass through
//! untouched: same bytes out, no reduction, zero extraction counters.

use pact::{
    reduce_embedded, ChainCollapseSpec, CutoffSpec, ExtractOptions, ReduceOptions, ReduceStrategy,
    ReductionSession,
};
use pact_circuit::{log_frequencies, AcExcitation, Circuit};
use pact_gen::{
    add_default_models, chain_heavy_deck, inverter, inverter_pair_deck, network_to_elements,
    power_grid_deck, rich_mixed_deck, substrate_mesh, ChainDeckSpec, LineSpec, MeshSpec,
    PowerGridSpec, RichDeckSpec,
};
use pact_netlist::{Element, ElementKind, Netlist, Waveform};

/// In-band agreement required between unreduced and re-stitched decks,
/// relative to signal scale.
const TOL: f64 = 1e-6;

/// One host deck of the equivalence matrix.
struct Host {
    name: &'static str,
    deck: Netlist,
    /// Cutoff placed above every pole of this host's RC content.
    fmax: f64,
    /// AC excitation source (unit test signal).
    ac_source: &'static str,
    /// AC comparison grid (in-band by construction).
    freqs: Vec<f64>,
    /// Fixed transient step and stop.
    tstep: f64,
    tstop: f64,
}

fn line_host() -> Host {
    Host {
        name: "line",
        deck: inverter_pair_deck(&LineSpec {
            segments: 40,
            ..LineSpec::default()
        }),
        fmax: 1e13,
        ac_source: "Vin",
        freqs: log_frequencies(4, 1e7, 1e10),
        tstep: 20e-12,
        tstop: 4e-9,
    }
}

/// A substrate mesh anchored by a driver and a receiver inverter: the
/// mesh interior is one big RC island, the driven/sensed contacts are
/// its boundary ports.
fn mesh_host() -> Host {
    let spec = MeshSpec {
        nx: 5,
        ny: 5,
        nz: 2,
        num_contacts: 4,
        num_wells: 2,
        ..MeshSpec::table2()
    };
    let net = substrate_mesh(&spec);
    let mut nl = Netlist::new("mesh host");
    add_default_models(&mut nl);
    nl.elements = network_to_elements(&net, "m");
    nl.elements.push(Element {
        name: "Vdd".to_owned(),
        kind: ElementKind::VSource {
            p: "vdd".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Dc(5.0),
        },
    });
    nl.elements.push(Element {
        name: "Vin".to_owned(),
        kind: ElementKind::VSource {
            p: "in".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: 5.0,
                td: 0.2e-9,
                tr: 0.1e-9,
                tf: 0.1e-9,
                pw: 2.4e-9,
                per: 5e-9,
            },
        },
    });
    nl.elements.extend(inverter(
        "drv", "in", "port0", "vdd", "0", "vdd", 40e-6, 80e-6,
    ));
    nl.elements.extend(inverter(
        "rcv", "port1", "out", "vdd", "0", "vdd", 4e-6, 8e-6,
    ));
    nl.elements
        .push(Element::capacitor("Cload", "out", "0", 10e-15));
    Host {
        name: "mesh",
        deck: nl,
        fmax: 1e15,
        ac_source: "Vin",
        freqs: log_frequencies(4, 1e7, 1e10),
        tstep: 20e-12,
        tstop: 4e-9,
    }
}

fn powergrid_host() -> Host {
    let deck = power_grid_deck(&PowerGridSpec {
        nx: 6,
        ny: 6,
        num_taps: 3,
        ..PowerGridSpec::default()
    });
    Host {
        name: "powergrid",
        deck: deck.netlist,
        fmax: 1e15,
        ac_source: "Vpad0",
        freqs: log_frequencies(4, 1e6, 1e9),
        tstep: 25e-12,
        tstop: 5e-9,
    }
}

/// The acceptance deck: R, C, L, diode, MOSFET and VCVS all present,
/// with two tapered multi-segment RC islands buried in the middle.
fn rich_host() -> Host {
    Host {
        name: "rich",
        deck: rich_mixed_deck(&RichDeckSpec::default()),
        fmax: 1e14,
        ac_source: "Vin",
        freqs: log_frequencies(4, 1e7, 1e10),
        tstep: 20e-12,
        tstop: 4e-9,
    }
}

fn strategies() -> Vec<(&'static str, ReduceStrategy)> {
    vec![
        ("flat", ReduceStrategy::Flat),
        (
            "hier",
            ReduceStrategy::Hierarchical {
                max_block: 24,
                max_depth: 4,
            },
        ),
        ("multipoint", ReduceStrategy::Multipoint { num_points: 2 }),
    ]
}

fn session_for(fmax: f64, strategy: ReduceStrategy) -> ReductionSession {
    // The cutoff tolerance doubles as multipoint's pole-trimming budget
    // (poles contributing less than a fraction of it in band are
    // dropped), so it must sit below the 1e-6 equivalence bound this
    // test asserts. Flat and hierarchical are exact here regardless:
    // with `fmax` above every pole the congruence retains the full
    // basis.
    let mut opts = ReduceOptions::new(CutoffSpec::new(fmax, 1e-7).expect("cutoff"));
    opts.threads = Some(1);
    opts.strategy = strategy;
    ReductionSession::new(opts)
}

/// Node names present in both compiled circuits (ground excluded) —
/// the host nodes plus every island boundary port. Internal RC nodes
/// disappear on one side or the other and are not comparable.
fn shared_nodes(a: &Circuit, b: &Circuit) -> Vec<String> {
    a.node_names()
        .iter()
        .filter(|n| n.as_str() != "0" && b.node_index(n).is_some())
        .cloned()
        .collect()
}

/// Asserts AC and transient agreement of `reduced` vs `original` at
/// every shared node, to `TOL` of signal scale.
fn assert_equivalent(host: &Host, label: &str, reduced: &Netlist) {
    let c0 = Circuit::from_netlist(&host.deck).expect("compile original");
    let c1 = Circuit::from_netlist(reduced).expect("compile reduced");
    let shared = shared_nodes(&c0, &c1);
    assert!(
        shared.len() >= 3,
        "{}/{label}: only {} shared nodes",
        host.name,
        shared.len()
    );

    // AC: unit excitation, complex voltages compared per frequency.
    let exc = AcExcitation::VSource(host.ac_source.to_owned());
    let a0 = c0.ac_sweep(&host.freqs, &exc).expect("ac original");
    let a1 = c1.ac_sweep(&host.freqs, &exc).expect("ac reduced");
    for node in &shared {
        let v0 = a0.voltage(node).expect("ac node voltage");
        let v1 = a1.voltage(node).expect("ac node voltage (reduced)");
        for (k, (x0, x1)) in v0.iter().zip(&v1).enumerate() {
            let scale = x0.abs().max(1.0);
            let d = (*x0 - *x1).abs();
            assert!(
                d <= TOL * scale,
                "{}/{label}: AC v({node}) at {:.3e} Hz differs by {d:.3e} (|v|={:.3e})",
                host.name,
                host.freqs[k],
                x0.abs()
            );
        }
    }

    // Transient: identical fixed grids, waveforms compared pointwise.
    let t0 = c0.transient(host.tstep, host.tstop).expect("tran original");
    let t1 = c1.transient(host.tstep, host.tstop).expect("tran reduced");
    assert_eq!(
        t0.times, t1.times,
        "{}/{label}: time grids differ",
        host.name
    );
    for node in &shared {
        let v0 = t0.voltage(node).expect("tran node voltage");
        let v1 = t1.voltage(node).expect("tran node voltage (reduced)");
        let scale = v0.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (k, (x0, x1)) in v0.iter().zip(&v1).enumerate() {
            let d = (x0 - x1).abs();
            assert!(
                d <= TOL * scale,
                "{}/{label}: transient v({node}) at t={:.3e} differs by {d:.3e}",
                host.name,
                t0.times[k]
            );
        }
    }
}

#[test]
fn restitched_decks_match_unreduced_across_hosts_and_strategies() {
    for host in [line_host(), mesh_host(), powergrid_host(), rich_host()] {
        for (sname, strategy) in strategies() {
            let mut session = session_for(host.fmax, strategy);
            let red = reduce_embedded(&host.deck, &mut session, &ExtractOptions::default())
                .unwrap_or_else(|e| panic!("{}/{sname}: reduce_embedded: {e}", host.name));
            let reduction = red
                .reduction
                .as_ref()
                .unwrap_or_else(|| panic!("{}/{sname}: nothing reduced", host.name));
            assert!(
                reduction.reductions.len() as u64 == red.telemetry.counters.extract_subnets
                    && red.telemetry.counters.extract_subnets >= 1,
                "{}/{sname}: subnet counter mismatch",
                host.name
            );
            assert!(
                red.nodes_before > 0,
                "{}/{sname}: no internal nodes found",
                host.name
            );
            // The re-stitched deck must render and reparse (the CLI
            // path); the tight comparison runs on the in-memory deck —
            // SPICE text quantizes values at ~1e-7 relative
            // (`format_value`'s 6 fractional digits), which the looser
            // `end_to_end.rs` bounds absorb but this one must not.
            pact_netlist::parse(&red.deck.to_string()).expect("re-stitched deck reparses");
            assert_equivalent(&host, sname, &red.deck);
        }
    }
}

/// The rich host extracts exactly its three buried islands (two tapered
/// lines plus the VCVS output load), and its boundary nodes survive in
/// the re-stitched deck.
#[test]
fn rich_deck_extraction_finds_the_buried_islands() {
    let host = rich_host();
    let mut session = session_for(host.fmax, ReduceStrategy::Flat);
    let red = reduce_embedded(&host.deck, &mut session, &ExtractOptions::default()).unwrap();
    assert_eq!(red.telemetry.counters.extract_subnets, 3);
    let text = red.deck.to_string();
    for port in ["a", "b", "c", "d", "sense"] {
        assert!(
            text.split_whitespace().any(|t| t == port),
            "boundary port {port} missing from re-stitched deck"
        );
    }
}

/// Chain collapse ahead of extraction: with a collapse budget tighter
/// than the equivalence tolerance, the pre-pass eliminates nodes and
/// the re-stitched deck still matches in-band (the collapse spec's band,
/// here well above the AC grid).
#[test]
fn collapsed_chains_still_match_in_band() {
    let deck = chain_heavy_deck(&ChainDeckSpec {
        chains: 2,
        segments: 50,
        r_total: 100.0,
        c_total: 0.1e-12,
        taps: 0,
    });
    let host = Host {
        name: "chains",
        deck,
        fmax: 1e14,
        ac_source: "Vin",
        freqs: log_frequencies(4, 1e4, 1e6),
        tstep: 50e-12,
        tstop: 5e-9,
    };
    let opts = ExtractOptions {
        collapse: Some(ChainCollapseSpec::new(1e6, 1e-7).expect("collapse spec")),
        ..ExtractOptions::default()
    };
    let mut session = session_for(host.fmax, ReduceStrategy::Flat);
    let red = reduce_embedded(&host.deck, &mut session, &opts).unwrap();
    assert_eq!(red.telemetry.counters.chains_collapsed, 2);
    assert!(
        red.telemetry.counters.nodes_eliminated >= 60,
        "re-segmentation barely helped: {}",
        red.telemetry.counters.nodes_eliminated
    );
    // AC-only comparison: the collapse budget holds below its f_max
    // (1 MHz); the transient pulse has content far above it.
    let c0 = Circuit::from_netlist(&host.deck).expect("compile original");
    let c1 = Circuit::from_netlist(&red.deck).expect("compile reduced");
    let exc = AcExcitation::VSource(host.ac_source.to_owned());
    let a0 = c0.ac_sweep(&host.freqs, &exc).expect("ac original");
    let a1 = c1.ac_sweep(&host.freqs, &exc).expect("ac reduced");
    for node in shared_nodes(&c0, &c1) {
        let v0 = a0.voltage(&node).unwrap();
        let v1 = a1.voltage(&node).unwrap();
        for (k, (x0, x1)) in v0.iter().zip(&v1).enumerate() {
            let d = (*x0 - *x1).abs();
            assert!(
                d <= TOL * x0.abs().max(1.0),
                "chains: AC v({node}) at {:.3e} Hz differs by {d:.3e}",
                host.freqs[k]
            );
        }
    }
}

/// A deck with no RC elements at all is the pass-through path: the
/// flattened input comes back unchanged, nothing is reduced, and the
/// extraction counters stay zero.
#[test]
fn deck_without_rc_subnetworks_passes_through_unchanged() {
    let mut nl = Netlist::new("no parasitics");
    add_default_models(&mut nl);
    nl.elements.push(Element {
        name: "Vdd".to_owned(),
        kind: ElementKind::VSource {
            p: "vdd".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Dc(5.0),
        },
    });
    nl.elements.push(Element {
        name: "Vin".to_owned(),
        kind: ElementKind::VSource {
            p: "in".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Dc(2.5),
        },
    });
    nl.elements.extend(inverter(
        "drv", "in", "mid", "vdd", "0", "vdd", 20e-6, 40e-6,
    ));
    nl.elements
        .extend(inverter("rcv", "mid", "out", "vdd", "0", "vdd", 4e-6, 8e-6));

    let mut session = session_for(1e12, ReduceStrategy::Flat);
    let red = reduce_embedded(&nl, &mut session, &ExtractOptions::default()).unwrap();
    assert!(red.reduction.is_none(), "nothing to reduce");
    assert_eq!(red.deck.to_string(), nl.to_string(), "pass-through bytes");
    assert_eq!(red.nodes_before, 0);
    assert_eq!(red.nodes_after, 0);
    assert_eq!(red.telemetry.counters.extract_subnets, 0);
    assert_eq!(red.telemetry.counters.chains_collapsed, 0);
    assert_eq!(red.telemetry.counters.nodes_eliminated, 0);
    // Zero-cost: no reduction phases ran — only the element scan.
    assert!(
        !red.telemetry.phases.iter().any(|p| p.name == "sanitize"),
        "pass-through ran the reduction pipeline"
    );
}
