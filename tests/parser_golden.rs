//! Golden tests for parser error messages.
//!
//! Each fixture in `tests/fixtures/` is a deliberately malformed SPICE
//! deck; the expected rendering of the resulting [`ParseNetlistError`] is
//! snapshot-asserted below, exactly, so any change to error wording, line
//! attribution or column attribution shows up as a diff in this file.

use pact_netlist::{parse, ParseNetlistError};

/// (fixture, expected `Display` rendering of the parse error)
const GOLDEN: &[(&str, &str, &str)] = &[
    (
        "bad_units.sp",
        include_str!("fixtures/bad_units.sp"),
        "line 2, col 11: invalid SPICE number `abc`",
    ),
    (
        "dangling_ends.sp",
        include_str!("fixtures/dangling_ends.sp"),
        "line 3: .ends without matching .subckt",
    ),
    (
        "duplicate_subckt.sp",
        include_str!("fixtures/duplicate_subckt.sp"),
        "line 5: duplicate .subckt definition `cell`",
    ),
    (
        "unterminated_subckt.sp",
        include_str!("fixtures/unterminated_subckt.sp"),
        "line 2: unterminated .subckt `cell`",
    ),
    (
        "bad_model.sp",
        include_str!("fixtures/bad_model.sp"),
        "line 2, col 11: unsupported model type `bjt`",
    ),
    (
        "missing_value.sp",
        include_str!("fixtures/missing_value.sp"),
        "line 2: expected `NAME node1 node2 value`",
    ),
    (
        "bad_ac.sp",
        include_str!("fixtures/bad_ac.sp"),
        "line 3, col 9: invalid point count",
    ),
    (
        "unsupported_element.sp",
        include_str!("fixtures/unsupported_element.sp"),
        "line 2: unsupported element type `q`",
    ),
    (
        "bad_pulse.sp",
        include_str!("fixtures/bad_pulse.sp"),
        "line 2, col 24: invalid SPICE number `zz`",
    ),
    // Extended element set: the new kinds carry the same line/column
    // attribution discipline as the original R/C/MOS cards.
    (
        "bad_inductor.sp",
        include_str!("fixtures/bad_inductor.sp"),
        "line 2, col 8: invalid SPICE number `abc`",
    ),
    (
        "bad_vcvs.sp",
        include_str!("fixtures/bad_vcvs.sp"),
        "line 2: expected `Ename p n cp cn value` (controlled source)",
    ),
    (
        "bad_cccs_ctrl.sp",
        include_str!("fixtures/bad_cccs_ctrl.sp"),
        "line 2, col 11: controlling element `R3` must be a voltage source (V…)",
    ),
    (
        "bad_diode_area.sp",
        include_str!("fixtures/bad_diode_area.sp"),
        "line 2, col 24: diode area must be positive and finite, got -1",
    ),
    (
        "duplicate_model.sp",
        include_str!("fixtures/duplicate_model.sp"),
        "line 3, col 8: duplicate .model definition `nch`",
    ),
];

#[test]
fn malformed_decks_produce_exact_error_messages() {
    for (name, deck, expected) in GOLDEN {
        let e: ParseNetlistError = parse(deck)
            .map(|_| panic!("{name}: expected a parse error, deck was accepted"))
            .unwrap_err();
        assert_eq!(
            e.to_string(),
            *expected,
            "{name}: error message drifted from golden snapshot"
        );
    }
}

#[test]
fn error_columns_point_at_the_offending_token() {
    // The column in each golden message must actually land on the token
    // it names within the fixture's source line, so the attribution is
    // usable by editors and humans counting characters.
    for (name, deck, expected) in GOLDEN {
        let e = parse(deck).unwrap_err();
        if e.col == 0 {
            continue;
        }
        let line = deck
            .lines()
            .nth(e.line - 1)
            .unwrap_or_else(|| panic!("{name}: error line {} out of range", e.line));
        // The message quotes the offending token between backticks; check
        // the source line actually contains it at the reported column.
        if let Some(tok) = expected.split('`').nth(1) {
            assert_eq!(
                &line[e.col - 1..e.col - 1 + tok.len()],
                tok,
                "{name}: col {} does not point at `{tok}` in {line:?}",
                e.col
            );
        }
    }
}

#[test]
fn well_formed_decks_still_parse() {
    // Guard against the golden fixtures' failure modes leaking into the
    // happy path: a deck exercising the same constructs, well formed.
    let deck = "\
* all constructs, valid
.subckt cell a b
R1 a b 1k
.ends
X1 n1 n2 cell
.model nch nmos (vto=0.7)
R1 in out 250
C1 out 0 1.35p
V1 in 0 pulse(0 5 0 1n 1n 3n 10n)
.ac dec 10 10meg 10g
.end
";
    let nl = parse(deck).expect("valid deck must parse");
    assert_eq!(nl.subckts.len(), 1);
    assert_eq!(nl.elements.len(), 3);
}
