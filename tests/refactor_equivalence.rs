//! Refactorization equivalence: a `SymbolicLu` numeric refactorization
//! must be **bit-identical** to a fresh Gilbert–Peierls factorization of
//! the same matrix — same pivot sequence, same L/U values down to the
//! last ulp — on every generator family (substrate mesh, power grid,
//! RC line), for both real (`G + αC`) and complex (`G + jωC`)
//! matrices. This is the contract that lets the AC/transient sweeps and
//! the verification grid reuse one symbolic analysis without changing
//! any result: "one symbolic, many numerics".
//!
//! Also covered: the pivot-rejection fallback — when a value change
//! invalidates the remembered pivot order, `LuCache` transparently
//! falls back to a fresh factorization and re-captures the analysis.

use pact_gen::{
    inverter_pair_deck, power_grid_deck, substrate_mesh, LineSpec, MeshSpec, PowerGridSpec,
};
use pact_netlist::{extract_rc, RcNetwork, Stamped};
use pact_sparse::{Complex64, CscMat, CscPencil, LuCache, RefactorError, SparseLu};

fn mesh_fixture() -> RcNetwork {
    substrate_mesh(&MeshSpec {
        nx: 8,
        ny: 8,
        nz: 3,
        num_contacts: 8,
        ..MeshSpec::table2()
    })
}

fn powergrid_fixture() -> RcNetwork {
    let deck = power_grid_deck(&PowerGridSpec {
        nx: 10,
        ny: 10,
        num_taps: 6,
        ..PowerGridSpec::default()
    });
    extract_rc(&deck.netlist, &[]).unwrap().network
}

fn line_fixture() -> RcNetwork {
    let deck = inverter_pair_deck(&LineSpec {
        segments: 60,
        ..LineSpec::default()
    });
    extract_rc(&deck, &[]).unwrap().network
}

/// `G + αC` as a real CSC matrix. The triplet order (all of G, then all
/// of C) is shared with [`csc_complex`] so both builds produce the same
/// union structure and one symbolic analysis serves either scalar type.
fn csc_real(st: &Stamped, alpha: f64) -> CscMat<f64> {
    let n = st.g.nrows();
    let mut trips = Vec::with_capacity(st.g.nnz() + st.c.nnz());
    for i in 0..n {
        for (j, v) in st.g.row_iter(i) {
            trips.push((i, j, v));
        }
    }
    for i in 0..n {
        for (j, v) in st.c.row_iter(i) {
            trips.push((i, j, alpha * v));
        }
    }
    CscMat::from_triplets(n, n, &trips)
}

/// `G + jωC` as a complex CSC matrix with the same structure as
/// [`csc_real`].
fn csc_complex(st: &Stamped, omega: f64) -> CscMat<Complex64> {
    let n = st.g.nrows();
    let mut trips = Vec::with_capacity(st.g.nnz() + st.c.nnz());
    for i in 0..n {
        for (j, v) in st.g.row_iter(i) {
            trips.push((i, j, Complex64::new(v, 0.0)));
        }
    }
    for i in 0..n {
        for (j, v) in st.c.row_iter(i) {
            trips.push((i, j, Complex64::new(0.0, omega * v)));
        }
    }
    CscMat::from_triplets(n, n, &trips)
}

fn assert_real_bits_equal(fresh: &SparseLu<f64>, refac: &SparseLu<f64>, what: &str) {
    assert_eq!(
        fresh.row_permutation(),
        refac.row_permutation(),
        "{what}: pivot order differs"
    );
    let (fl, rl) = (fresh.l_values(), refac.l_values());
    assert_eq!(fl.len(), rl.len(), "{what}: L nnz differs");
    for (k, (a, b)) in fl.iter().zip(rl).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: L[{k}] differs");
    }
    let (fu, ru) = (fresh.u_values(), refac.u_values());
    assert_eq!(fu.len(), ru.len(), "{what}: U nnz differs");
    for (k, (a, b)) in fu.iter().zip(ru).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: U[{k}] differs");
    }
}

fn assert_complex_bits_equal(fresh: &SparseLu<Complex64>, refac: &SparseLu<Complex64>, what: &str) {
    assert_eq!(
        fresh.row_permutation(),
        refac.row_permutation(),
        "{what}: pivot order differs"
    );
    for (which, (fs, rs)) in [
        ("L", (fresh.l_values(), refac.l_values())),
        ("U", (fresh.u_values(), refac.u_values())),
    ] {
        assert_eq!(fs.len(), rs.len(), "{what}: {which} nnz differs");
        for (k, (a, b)) in fs.iter().zip(rs).enumerate() {
            assert_eq!(
                (a.re.to_bits(), a.im.to_bits()),
                (b.re.to_bits(), b.im.to_bits()),
                "{what}: {which}[{k}] differs"
            );
        }
    }
}

/// For one deck: capture the analysis from a real base matrix, then
/// check that refactorizations reproduce fresh factorizations bit for
/// bit across a spread of real shifts and complex frequencies.
fn check_family(net: &RcNetwork, label: &str) {
    let st = net.stamp();
    let base = csc_real(&st, 1e9);
    let (lu0, sym) = SparseLu::factor_analyzed(&base).unwrap();
    assert_eq!(sym.n(), st.g.nrows(), "{label}: analysis dimension");
    assert_eq!(
        sym.factor_nnz(),
        lu0.factor_nnz(),
        "{label}: analysis fill count"
    );

    // Refactoring the *same* values must reproduce the factor exactly.
    let re0 = sym.refactor(&base).unwrap();
    assert_real_bits_equal(&lu0, &re0, &format!("{label}: identity refactor"));

    // Real sweeps: G + αC across six decades of α.
    for alpha in [1e6, 1e8, 1e10, 1e12] {
        let a = csc_real(&st, alpha);
        let fresh = SparseLu::factor(&a).unwrap();
        let refac = sym.refactor(&a).unwrap();
        assert_real_bits_equal(&fresh, &refac, &format!("{label}: real α={alpha:.0e}"));
    }

    // Complex sweeps: the symbolic captured from the *real* matrix must
    // serve G + jωC (same union structure, different scalar type).
    for omega in [2e7, 2e9, 2e11] {
        let y = csc_complex(&st, omega);
        assert!(sym.matches(&y), "{label}: complex structure must match");
        let fresh = SparseLu::factor(&y).unwrap();
        let refac = sym.refactor(&y).unwrap();
        assert_complex_bits_equal(&fresh, &refac, &format!("{label}: complex ω={omega:.0e}"));
        // And the solves built on them agree bitwise too.
        let n = y.nrows();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(1.0 / (i + 1) as f64, 0.25))
            .collect();
        let xf = fresh.solve(&b);
        let xr = refac.solve(&b);
        for (k, (a, c)) in xf.iter().zip(&xr).enumerate() {
            assert_eq!(
                (a.re.to_bits(), a.im.to_bits()),
                (c.re.to_bits(), c.im.to_bits()),
                "{label}: solve[{k}] differs at ω={omega:.0e}"
            );
        }
    }
}

#[test]
fn mesh_refactor_is_bit_identical_to_fresh_factor() {
    check_family(&mesh_fixture(), "mesh");
}

#[test]
fn powergrid_refactor_is_bit_identical_to_fresh_factor() {
    check_family(&powergrid_fixture(), "powergrid");
}

#[test]
fn line_refactor_is_bit_identical_to_fresh_factor() {
    check_family(&line_fixture(), "line");
}

/// The multipoint expansion path: one `CscPencil` over `(G, C)`, the
/// symbolic analysis captured from the real `s = 0` evaluation, then
/// numeric refactorizations at shifted points — `Complex64` on the
/// imaginary axis, `f64` on the negative real axis. Each must be
/// bit-identical to a fresh factorization of the same shifted matrix.
#[test]
fn pencil_refactor_at_nonzero_shifts_is_bit_identical() {
    for (label, net) in [
        ("mesh", mesh_fixture()),
        ("powergrid", powergrid_fixture()),
        ("line", line_fixture()),
    ] {
        // The internal (D, E) block, exactly as the multipoint reducer
        // shifts it — the full G can have zero conductance rows, but D
        // is SPD, so the s = 0 capture is always well posed.
        let parts = pact::Partitions::split(&net.stamp());
        let n = parts.n;
        let gtrips: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| parts.d.row_iter(i).map(move |(j, v)| (i, j, v)))
            .collect();
        let ctrips: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| parts.e.row_iter(i).map(move |(j, v)| (i, j, v)))
            .collect();
        let pencil = CscPencil::from_triplets(n, &gtrips, &ctrips);
        let a0 = pencil.eval_real(0.0);
        let (_, sym) = SparseLu::factor_analyzed(&a0).unwrap();

        // Imaginary-axis shifts: complex refactor through the symbolic
        // captured from the *real* s = 0 matrix.
        for omega in [2e8, 2e10] {
            let a_s = pencil.eval(omega);
            assert!(sym.matches(&a_s), "{label}: complex shift structure");
            let fresh = SparseLu::factor(&a_s).unwrap();
            let refac = sym.refactor(&a_s).unwrap();
            assert_complex_bits_equal(&fresh, &refac, &format!("{label}: pencil jω={omega:.0e}"));
        }

        // A mild negative-real-axis shift (well inside the SPD region,
        // far from the pencil's poles): real refactor, same symbolic.
        let a_neg = pencil.eval_real(-1e3);
        assert!(sym.matches(&a_neg), "{label}: real shift structure");
        let fresh = SparseLu::factor(&a_neg).unwrap();
        let refac = sym.refactor(&a_neg).unwrap();
        assert_real_bits_equal(&fresh, &refac, &format!("{label}: pencil σ=-1e3"));
    }
}

/// A value change that invalidates the remembered pivot order must be
/// rejected by `refactor` (not silently produce a low-quality factor),
/// and `LuCache` must fall back to a fresh factorization and re-capture
/// the new analysis.
#[test]
fn pivot_rejection_falls_back_to_fresh_factorization() {
    // Diagonally dominant: every column pivots on its diagonal.
    let good = CscMat::from_triplets(
        3,
        3,
        &[
            (0, 0, 4.0),
            (1, 0, 1.0),
            (0, 1, 1.0),
            (1, 1, 4.0),
            (2, 1, 1.0),
            (1, 2, 1.0),
            (2, 2, 4.0),
        ],
    );
    // Same structure, but the (0,0) entry collapses: the remembered
    // diagonal pivot fails the threshold test against the subdiagonal.
    let bad = CscMat::from_triplets(
        3,
        3,
        &[
            (0, 0, 1e-14),
            (1, 0, 1.0),
            (0, 1, 1.0),
            (1, 1, 4.0),
            (2, 1, 1.0),
            (1, 2, 1.0),
            (2, 2, 4.0),
        ],
    );
    let (_, sym) = SparseLu::<f64>::factor_analyzed(&good).unwrap();
    match sym.refactor(&bad) {
        Err(RefactorError::PivotRejected { column }) => assert_eq!(column, 0),
        other => panic!("expected pivot rejection, got {other:?}"),
    }

    // The cache hides the fallback: the caller always gets a factor.
    let mut cache = LuCache::new();
    let (_, refactored) = cache.factor(&good).unwrap();
    assert!(!refactored, "first factorization captures the analysis");
    let (lu_bad, refactored) = cache.factor(&bad).unwrap();
    assert!(!refactored, "pivot rejection must fall back to fresh");
    let fresh_bad = SparseLu::factor(&bad).unwrap();
    assert_real_bits_equal(&fresh_bad, &lu_bad, "fallback factor");
    // The fallback re-captured `bad`'s pivot order, so factoring it
    // again is now a pure refactorization.
    let (_, refactored) = cache.factor(&bad).unwrap();
    assert!(refactored, "fallback must re-capture the analysis");
}
