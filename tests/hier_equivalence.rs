//! Hierarchical vs flat reduction equivalence.
//!
//! The divide-and-conquer strategy must be an implementation detail:
//! for every generator family (substrate mesh, power grid, RC line) the
//! hierarchical model's port admittance must agree with the flat
//! model's to ≤ 1e-6 relative across a log-spaced in-band sweep, both
//! models must be passive, and — mirroring `par_determinism` — the
//! hierarchical result must be bit-identical for 1/2/4/8 worker
//! threads.

use pact::{CutoffSpec, ReduceOptions, ReduceStrategy, ReducedModel, Reduction};
use pact_gen::{
    inverter_pair_deck, power_grid_deck, substrate_mesh, LineSpec, MeshSpec, PowerGridSpec,
};
use pact_netlist::{extract_rc, RcNetwork};

/// Relative agreement required between hier and flat admittances
/// in-band (the leaf cutoff guard is sized to keep truncation error
/// well below this).
const REL_TOL: f64 = 1e-6;

fn mesh_fixture() -> RcNetwork {
    substrate_mesh(&MeshSpec {
        nx: 10,
        ny: 10,
        nz: 4,
        num_contacts: 16,
        ..MeshSpec::table2()
    })
}

fn powergrid_fixture() -> RcNetwork {
    let deck = power_grid_deck(&PowerGridSpec {
        nx: 12,
        ny: 12,
        num_taps: 8,
        ..PowerGridSpec::default()
    });
    extract_rc(&deck.netlist, &[]).unwrap().network
}

fn line_fixture() -> RcNetwork {
    let deck = inverter_pair_deck(&LineSpec {
        segments: 100,
        ..LineSpec::default()
    });
    extract_rc(&deck, &[]).unwrap().network
}

fn reduce_with(net: &RcNetwork, strategy: ReduceStrategy, threads: usize, fmax: f64) -> Reduction {
    let mut opts = ReduceOptions::new(CutoffSpec::new(fmax, 0.05).unwrap());
    opts.threads = Some(threads);
    opts.strategy = strategy;
    pact::reduce_network(net, &opts).unwrap()
}

fn assert_models_agree(flat: &ReducedModel, hier: &ReducedModel, fmax: f64, label: &str) {
    let m = flat.num_ports();
    assert_eq!(hier.num_ports(), m, "{label}: port counts differ");
    assert_eq!(
        flat.port_names, hier.port_names,
        "{label}: port names differ"
    );
    // Three decades up to f_max, log-spaced.
    for k in 0..16 {
        let f = fmax * 10f64.powf(-3.0 + 3.0 * k as f64 / 15.0);
        let yf = flat.y_at(f);
        let yh = hier.y_at(f);
        let mut scale = 0.0f64;
        for i in 0..m {
            for j in 0..m {
                scale = scale.max(yf[(i, j)].abs());
            }
        }
        for i in 0..m {
            for j in 0..m {
                let d = (yh[(i, j)] - yf[(i, j)]).abs();
                assert!(
                    d <= REL_TOL * scale.max(1e-30),
                    "{label}: f={f:.3e} Y({i},{j}) differs by {d:.3e} (scale {scale:.3e})"
                );
            }
        }
    }
}

fn check_family(net: &RcNetwork, max_block: usize, fmax: f64, label: &str) {
    let flat = reduce_with(net, ReduceStrategy::Flat, 1, fmax);
    let hier = reduce_with(
        net,
        ReduceStrategy::Hierarchical {
            max_block,
            max_depth: 16,
        },
        1,
        fmax,
    );
    let c = &hier.telemetry.counters;
    assert!(
        c.hier_blocks >= 2,
        "{label}: partition degenerated ({} blocks) — fixture too small",
        c.hier_blocks
    );
    assert!(c.hier_separator_nodes > 0, "{label}: no separators");
    assert!(c.hier_tree_depth > 0, "{label}: depth not recorded");
    assert_eq!(
        c.num_internal,
        net.num_internal() as u64,
        "{label}: counters must describe the original network"
    );
    assert_models_agree(&flat.model, &hier.model, fmax, label);
    assert!(flat.model.is_passive(1e-8), "{label}: flat not passive");
    assert!(hier.model.is_passive(1e-8), "{label}: hier not passive");
}

#[test]
fn mesh_hier_matches_flat_and_stays_passive() {
    check_family(&mesh_fixture(), 48, 2e9, "mesh");
}

#[test]
fn powergrid_hier_matches_flat_and_stays_passive() {
    check_family(&powergrid_fixture(), 24, 1e9, "powergrid");
}

#[test]
fn line_hier_matches_flat_and_stays_passive() {
    check_family(&line_fixture(), 20, 5e9, "line");
}

#[test]
fn hier_reduction_is_bit_identical_across_thread_counts() {
    let net = mesh_fixture();
    let strategy = ReduceStrategy::Hierarchical {
        max_block: 48,
        max_depth: 16,
    };
    let base = reduce_with(&net, strategy, 1, 2e9);
    assert!(base.telemetry.counters.hier_blocks >= 2);
    // The parallel axis under test is the Schur two-level leaf fan-out,
    // not the dense fallback — make sure that's the path that ran.
    assert!(
        base.telemetry
            .eigen_choices
            .iter()
            .any(|c| c.backend == "schur"),
        "mesh leaves must take the two-level Schur path"
    );
    for threads in [2usize, 4, 8] {
        let par = reduce_with(&net, strategy, threads, 2e9);
        assert_eq!(base.model.a1, par.model.a1, "threads={threads}: A' differs");
        assert_eq!(base.model.b1, par.model.b1, "threads={threads}: B' differs");
        assert_eq!(
            base.model.lambdas, par.model.lambdas,
            "threads={threads}: poles differ"
        );
        assert_eq!(
            base.model.r2, par.model.r2,
            "threads={threads}: R'' differs"
        );
        assert_eq!(
            base.telemetry.counters, par.telemetry.counters,
            "threads={threads}: counters differ"
        );
        assert_eq!(
            base.telemetry.warnings, par.telemetry.warnings,
            "threads={threads}: warnings differ"
        );
        assert_eq!(
            base.telemetry.counters_json_string(),
            par.telemetry.counters_json_string(),
            "threads={threads}: serialized telemetry differs"
        );
    }
}

#[test]
fn two_level_leaf_poles_match_flat() {
    // Pole parity, not just admittance parity: the stitched top pass
    // over budget-trimmed two-level leaves must reproduce the flat
    // in-band pole set pole by pole. Deep-in-band poles agree to ~1e-8;
    // the worst case sits just above the cutoff, where the leaf trim
    // budget (1e-5 of the leaf conductance norm) is the binding
    // perturbation — hence the 2e-5 ceiling here, while the
    // band-accuracy statement users rely on stays the ≤1e-6 admittance
    // parity asserted by the `*_matches_flat_and_stays_passive` suite.
    let net = mesh_fixture();
    let fmax = 2e9;
    let flat = reduce_with(&net, ReduceStrategy::Flat, 1, fmax);
    let hier = reduce_with(
        &net,
        ReduceStrategy::Hierarchical {
            max_block: 48,
            max_depth: 16,
        },
        1,
        fmax,
    );
    assert!(hier
        .telemetry
        .eigen_choices
        .iter()
        .any(|c| c.backend == "schur"));
    assert_eq!(
        flat.model.lambdas.len(),
        hier.model.lambdas.len(),
        "pole counts differ: flat {} vs hier {}",
        flat.model.lambdas.len(),
        hier.model.lambdas.len()
    );
    for (k, (lf, lh)) in flat
        .model
        .lambdas
        .iter()
        .zip(&hier.model.lambdas)
        .enumerate()
    {
        let rel = (lf - lh).abs() / lf.abs().max(1e-300);
        assert!(
            rel <= 2e-5,
            "pole {k}: flat λ={lf:.9e} vs hier λ={lh:.9e} (rel {rel:.3e})"
        );
    }
}

/// The bench-scale A/B case: a ≥20k-node substrate mesh at the bench
/// cutoff, checked for full admittance parity and passivity. Several
/// seconds per reduction, so gated behind `--features slow-tests`.
#[cfg(feature = "slow-tests")]
#[test]
fn large_mesh_hier_matches_flat() {
    let net = substrate_mesh(&MeshSpec {
        nx: 40,
        ny: 40,
        nz: 13,
        num_contacts: 64,
        ..MeshSpec::table4()
    });
    assert!(net.num_nodes() >= 20_000, "fixture must be ≥20k nodes");
    check_family(&net, 2000, 500e6, "mesh20k");
}

#[test]
fn degenerate_partition_falls_back_to_flat() {
    // max_block larger than the network: hier must return the flat
    // result (same model bits) while still reporting one block.
    let net = line_fixture();
    let flat = reduce_with(&net, ReduceStrategy::Flat, 1, 5e9);
    let hier = reduce_with(
        &net,
        ReduceStrategy::Hierarchical {
            max_block: 100_000,
            max_depth: 16,
        },
        1,
        5e9,
    );
    assert_eq!(flat.model.a1, hier.model.a1);
    assert_eq!(flat.model.lambdas, hier.model.lambdas);
    assert_eq!(flat.model.r2, hier.model.r2);
    assert_eq!(hier.telemetry.counters.hier_blocks, 1);
}
