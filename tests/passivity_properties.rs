//! Randomized tests of the paper's central invariants, over randomly
//! generated RC networks:
//!
//! 1. **Passivity** — congruence transforms preserve non-negative
//!    definiteness, so every reduction is passive (Section 3);
//! 2. **Exact moments** — DC admittance and its first derivative are
//!    matched exactly (eq. 7–9);
//! 3. **Real, stable poles** — all retained poles are real and negative
//!    (Section 2).
//!
//! Each property sweeps a deterministic set of [`XorShiftRng`] seeds, so
//! failures reproduce exactly. The default sweep is small enough for the
//! tier-1 suite; the `slow-tests` feature widens it.

use pact::{CutoffSpec, FullAdmittance, Partitions, ReduceOptions};
use pact_netlist::{Branch, RcNetwork};
use pact_sparse::XorShiftRng;

#[cfg(feature = "slow-tests")]
const CASES: u64 = 48;
#[cfg(not(feature = "slow-tests"))]
const CASES: u64 = 8;

fn seeds() -> impl Iterator<Item = u64> {
    (0..CASES).map(|k| 0xac7 * 1000 + k)
}

/// A random connected RC network with `ports` ports and `internals`
/// internal nodes. A random spanning tree guarantees DC paths
/// (positive-definite `D`); extra random resistors and capacitors add
/// mesh structure.
fn rc_network(ports: usize, internals: usize, rng: &mut XorShiftRng) -> RcNetwork {
    let n = ports + internals;
    let mut node_names: Vec<String> = (0..ports).map(|i| format!("p{i}")).collect();
    node_names.extend((0..internals).map(|i| format!("i{i}")));
    let mut resistors = Vec::new();
    // Spanning tree over nodes 0..n with node 0 grounded.
    resistors.push(Branch {
        a: Some(0),
        b: None,
        value: rng.gen_range_f64(10.0, 10_000.0),
    });
    for k in 1..n {
        // parent = deterministic pseudo-random earlier node
        let parent = (k * 7 + 3) % k;
        resistors.push(Branch {
            a: Some(k),
            b: Some(parent),
            value: rng.gen_range_f64(10.0, 10_000.0),
        });
    }
    for _ in 0..rng.gen_index(2 * n) {
        let a = rng.gen_index(n);
        let b = rng.gen_index(n);
        let r = rng.gen_range_f64(10.0, 100_000.0);
        if rng.gen_f64() < 0.5 {
            resistors.push(Branch {
                a: Some(a),
                b: None,
                value: r,
            });
        } else if a != b {
            resistors.push(Branch {
                a: Some(a),
                b: Some(b),
                value: r,
            });
        }
    }
    let capacitors = (0..1 + rng.gen_index(n))
        .map(|_| Branch {
            a: Some(rng.gen_index(n)),
            b: None,
            value: rng.gen_range_f64(1e-15, 5e-12),
        })
        .collect();
    RcNetwork {
        node_names,
        num_ports: ports,
        resistors,
        capacitors,
    }
}

#[test]
fn reductions_are_passive() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let net = rc_network(3, 12, &mut rng);
        let fmax = rng.gen_range_f64(1e8, 2e10);
        let opts = ReduceOptions::new(CutoffSpec::new(fmax, 0.05).unwrap());
        let red = pact::reduce_network(&net, &opts).unwrap();
        assert!(
            red.model.is_passive(1e-7),
            "seed {seed}: reduction not passive"
        );
    }
}

#[test]
fn poles_are_real_negative_and_below_cutoff() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let net = rc_network(2, 10, &mut rng);
        let spec = CutoffSpec::new(1e9, 0.05).unwrap();
        let red = pact::reduce_network(&net, &ReduceOptions::new(spec)).unwrap();
        for &lam in &red.model.lambdas {
            // λ > 0 ⇔ pole s = −1/λ real negative.
            assert!(lam > 0.0, "seed {seed}");
            // Retained ⇒ pole frequency below cutoff.
            let f_pole = 1.0 / (2.0 * std::f64::consts::PI * lam);
            assert!(
                f_pole <= spec.cutoff_frequency() * (1.0 + 1e-9),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn dc_moment_is_exact() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let net = rc_network(3, 10, &mut rng);
        let red = pact::reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap()),
        )
        .unwrap();
        let parts = Partitions::split(&net.stamp());
        let full = FullAdmittance::new(&parts);
        let y0e = full.y_at(0.0).unwrap();
        let y0r = red.model.y_at(0.0);
        let scale = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| y0e[(i, j)].abs())
            .fold(1e-300, f64::max);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (y0e[(i, j)].re - y0r[(i, j)].re).abs() <= 1e-8 * scale,
                    "seed {seed}: DC moment mismatch at ({i}, {j})"
                );
            }
        }
    }
}

#[test]
fn unstamped_netlist_restamps_to_same_model() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let net = rc_network(2, 8, &mut rng);
        // to_netlist_elements → restamp → admittance identical.
        let red = pact::reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(5e9, 0.05).unwrap()),
        )
        .unwrap();
        let els = red.model.to_netlist_elements("x", 0.0);
        let mut names = red.model.port_names.clone();
        for i in 0..red.model.num_poles() {
            names.push(format!("x_p{i}"));
        }
        let idx = |s: &str| names.iter().position(|n| n == s);
        let nn = names.len();
        let mut gt = pact_sparse::TripletMat::new(nn, nn);
        let mut ct = pact_sparse::TripletMat::new(nn, nn);
        for e in &els {
            match &e.kind {
                pact_netlist::ElementKind::Resistor { a, b, ohms } => {
                    gt.stamp_conductance(idx(a), idx(b), 1.0 / ohms);
                }
                pact_netlist::ElementKind::Capacitor { a, b, farads } => {
                    ct.stamp_conductance(idx(a), idx(b), *farads);
                }
                _ => panic!("seed {seed}: non-RC element emitted"),
            }
        }
        let st = pact_netlist::Stamped {
            g: gt.to_csr(),
            c: ct.to_csr(),
            num_ports: red.model.num_ports(),
        };
        let parts = Partitions::split(&st);
        let full = FullAdmittance::new(&parts);
        for &f in &[1e8f64, 2e9] {
            let ya = full.y_at(f).unwrap();
            let yb = red.model.y_at(f);
            let scale = (0..2)
                .flat_map(|i| (0..2).map(move |j| (i, j)))
                .map(|(i, j)| yb[(i, j)].abs())
                .fold(1e-300, f64::max);
            for i in 0..2 {
                for j in 0..2 {
                    assert!(
                        (ya[(i, j)] - yb[(i, j)]).abs() <= 1e-6 * scale,
                        "seed {seed}: netlist mismatch at f={f} ({i}, {j})"
                    );
                }
            }
        }
    }
}

#[test]
fn more_tolerance_never_keeps_more_poles() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let net = rc_network(2, 14, &mut rng);
        let tight = pact::reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(1e9, 0.01).unwrap()),
        )
        .unwrap();
        let loose = pact::reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(1e9, 0.30).unwrap()),
        )
        .unwrap();
        assert!(
            loose.model.num_poles() <= tight.model.num_poles(),
            "seed {seed}"
        );
    }
}
