//! Property-based tests of the paper's central invariants, over randomly
//! generated RC networks:
//!
//! 1. **Passivity** — congruence transforms preserve non-negative
//!    definiteness, so every reduction is passive (Section 3);
//! 2. **Exact moments** — DC admittance and its first derivative are
//!    matched exactly (eq. 7–9);
//! 3. **Real, stable poles** — all retained poles are real and negative
//!    (Section 2).

use proptest::prelude::*;

use pact::{CutoffSpec, FullAdmittance, Partitions, ReduceOptions};
use pact_netlist::{Branch, RcNetwork};

/// Strategy: a random connected RC network with `ports` ports and
/// `internals` internal nodes. A random spanning tree guarantees DC paths
/// (positive-definite `D`); extra random resistors and capacitors add
/// mesh structure.
fn rc_network(ports: usize, internals: usize) -> impl Strategy<Value = RcNetwork> {
    let n = ports + internals;
    let tree_r = proptest::collection::vec(10.0f64..10_000.0, n);
    let extra = proptest::collection::vec(
        ((0..n), (0..n), 10.0f64..100_000.0, proptest::bool::ANY),
        0..2 * n,
    );
    let caps = proptest::collection::vec((0..n, 1e-15f64..5e-12), 1..n + 1);
    (tree_r, extra, caps).prop_map(move |(tree, extra, caps)| {
        let mut node_names: Vec<String> = (0..ports).map(|i| format!("p{i}")).collect();
        node_names.extend((0..internals).map(|i| format!("i{i}")));
        let mut resistors = Vec::new();
        // Spanning tree over nodes 0..n with node 0 grounded via tree[0].
        resistors.push(Branch {
            a: Some(0),
            b: None,
            value: tree[0],
        });
        for (k, &r) in tree.iter().enumerate().skip(1) {
            // parent = deterministic pseudo-random earlier node
            let parent = (k * 7 + 3) % k;
            resistors.push(Branch {
                a: Some(k),
                b: Some(parent),
                value: r,
            });
        }
        for (a, b, r, grounded) in extra {
            if grounded {
                resistors.push(Branch {
                    a: Some(a),
                    b: None,
                    value: r,
                });
            } else if a != b {
                resistors.push(Branch {
                    a: Some(a),
                    b: Some(b),
                    value: r,
                });
            }
        }
        let capacitors = caps
            .into_iter()
            .map(|(node, c)| Branch {
                a: Some(node),
                b: None,
                value: c,
            })
            .collect();
        RcNetwork {
            node_names,
            num_ports: ports,
            resistors,
            capacitors,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reductions_are_passive(net in rc_network(3, 12), fmax in 1e8f64..2e10) {
        let opts = ReduceOptions::new(CutoffSpec::new(fmax, 0.05).unwrap());
        let red = pact::reduce_network(&net, &opts).unwrap();
        prop_assert!(red.model.is_passive(1e-7), "reduction not passive");
    }

    #[test]
    fn poles_are_real_negative_and_below_cutoff(net in rc_network(2, 10)) {
        let spec = CutoffSpec::new(1e9, 0.05).unwrap();
        let red = pact::reduce_network(&net, &ReduceOptions::new(spec)).unwrap();
        for &lam in &red.model.lambdas {
            // λ > 0 ⇔ pole s = −1/λ real negative.
            prop_assert!(lam > 0.0);
            // Retained ⇒ pole frequency below cutoff.
            let f_pole = 1.0 / (2.0 * std::f64::consts::PI * lam);
            prop_assert!(f_pole <= spec.cutoff_frequency() * (1.0 + 1e-9));
        }
    }

    #[test]
    fn dc_moment_is_exact(net in rc_network(3, 10)) {
        let red = pact::reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap()),
        )
        .unwrap();
        let parts = Partitions::split(&net.stamp());
        let full = FullAdmittance::new(&parts);
        let y0e = full.y_at(0.0).unwrap();
        let y0r = red.model.y_at(0.0);
        let scale = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| y0e[(i, j)].abs())
            .fold(1e-300, f64::max);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!(
                    (y0e[(i, j)].re - y0r[(i, j)].re).abs() <= 1e-8 * scale,
                    "DC moment mismatch at ({}, {})", i, j
                );
            }
        }
    }

    #[test]
    fn unstamped_netlist_restamps_to_same_model(net in rc_network(2, 8)) {
        // to_netlist_elements → restamp → admittance identical.
        let red = pact::reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(5e9, 0.05).unwrap()),
        )
        .unwrap();
        let els = red.model.to_netlist_elements("x", 0.0);
        let mut names = red.model.port_names.clone();
        for i in 0..red.model.num_poles() {
            names.push(format!("x_p{i}"));
        }
        let idx = |s: &str| names.iter().position(|n| n == s);
        let nn = names.len();
        let mut gt = pact_sparse::TripletMat::new(nn, nn);
        let mut ct = pact_sparse::TripletMat::new(nn, nn);
        for e in &els {
            match &e.kind {
                pact_netlist::ElementKind::Resistor { a, b, ohms } => {
                    gt.stamp_conductance(idx(a), idx(b), 1.0 / ohms);
                }
                pact_netlist::ElementKind::Capacitor { a, b, farads } => {
                    ct.stamp_conductance(idx(a), idx(b), *farads);
                }
                _ => prop_assert!(false, "non-RC element emitted"),
            }
        }
        let st = pact_netlist::Stamped {
            g: gt.to_csr(),
            c: ct.to_csr(),
            num_ports: red.model.num_ports(),
        };
        let parts = Partitions::split(&st);
        let full = FullAdmittance::new(&parts);
        for &f in &[1e8f64, 2e9] {
            let ya = full.y_at(f).unwrap();
            let yb = red.model.y_at(f);
            let scale = (0..2)
                .flat_map(|i| (0..2).map(move |j| (i, j)))
                .map(|(i, j)| yb[(i, j)].abs())
                .fold(1e-300, f64::max);
            for i in 0..2 {
                for j in 0..2 {
                    prop_assert!(
                        (ya[(i, j)] - yb[(i, j)]).abs() <= 1e-6 * scale,
                        "netlist mismatch at f={} ({}, {})", f, i, j
                    );
                }
            }
        }
    }

    #[test]
    fn more_tolerance_never_keeps_more_poles(net in rc_network(2, 14)) {
        let tight = pact::reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(1e9, 0.01).unwrap()),
        )
        .unwrap();
        let loose = pact::reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(1e9, 0.30).unwrap()),
        )
        .unwrap();
        prop_assert!(loose.model.num_poles() <= tight.model.num_poles());
    }
}
