* bipolar models are not supported
.model q1 bjt (bf=100)
.end
