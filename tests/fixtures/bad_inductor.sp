* inductor with a bad value
L1 a b abc
.end
