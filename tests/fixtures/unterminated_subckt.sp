* .subckt never closed
.subckt cell a b
R1 a b 1k
.end
