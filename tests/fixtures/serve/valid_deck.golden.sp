* serve golden deck (RC network reduced by PACT)
Vdrv in 0 dc 1.000000
Iload out 0 dc 1.000000m
Rrcfit_0_1 in out 350.000000
Crcfit_0_1 in out -1.020408p
Crcfit_0_2 in rcfit_p0 2.233793p
Crcfit_0_3 in rcfit_p1 -3.115140p
Crcfit_0_4 in rcfit_p2 351.278783f
Crcfit_0_0 in 0 3.101497p
Crcfit_1_2 out rcfit_p0 2.404278p
Crcfit_1_3 out rcfit_p1 3.434915p
Crcfit_1_4 out rcfit_p2 9.249579f
Crcfit_1_1 out 0 -2.419871p
Rrcfit_2_2 rcfit_p0 0 54.596743
Rrcfit_3_3 rcfit_p1 0 1.000000
Crcfit_3_3 rcfit_p1 0 72.691882p
Rrcfit_4_4 rcfit_p2 0 85.728687
.end
