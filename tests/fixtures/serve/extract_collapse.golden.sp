* embedded extract golden deck (RC network reduced by PACT)
Vdrv in 0 dc 1.000000
Iload out 0 dc 1.000000m
V2 p 0 dc 1.000000
Iload2 r 0 dc 1.000000m
Rrcfit0_0_1 in out 240.000000
Crcfit0_0_1 in out -3.833333p
Crcfit0_0_0 in 0 11.500000p
Crcfit0_1_1 out 0 12.500000p
Rrcfit1_0_1 p r 200.000000
Crcfit1_0_0 p 0 500.000000f
Crcfit1_1_1 r 0 500.000000f
.end
