* the same cell defined twice
.subckt cell a b
R1 a b 1k
.ends
.subckt cell a b
R1 a b 2k
.ends
.end
