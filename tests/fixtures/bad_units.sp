* bad resistor value
R1 in out abc
.end
