* dangling .ends with no open .subckt
R1 a 0 1k
.ends
.end
