* truncated capacitor card
C7 n1 n2
.end
