* vcvs with missing control nodes
E1 outp 0 sense
.end
