* point count must be an integer
R1 a 0 1k
.ac dec ten 10meg 10g
.end
