* same model name defined twice
.model nch nmos (vto=0.7)
.model nch d (is=1e-14)
.end
