* cccs controlled by a resistor
F1 outp 0 R3 2.0
.end
