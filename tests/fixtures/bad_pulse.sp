* garbage inside the pulse argument list
V1 in 0 pulse(0 5 0 1n zz 3n)
.end
