* bjt element card
Q1 c b e model
.end
