* diode with a negative area
D1 anode 0 dclamp area=-1
.end
