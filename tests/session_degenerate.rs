//! Degenerate inputs through every strategy × eigen backend, plus the
//! poisoned-deck (NaN) regression.
//!
//! A ports-only network (nothing to eliminate) and a single-internal
//! network (a 1×1 `D` block) must come back with identical `(A′, B′)`
//! moment blocks no matter which reduction strategy or eigen backend
//! computes them — the moments are fixed by the congruence transform
//! before any eigensolver runs. A deck whose conductance block carries
//! a NaN must fail with the typed non-finite-pivot error (never a
//! perturbed-pivot "rescue", never a panic), with node attribution.

use pact::{
    CutoffSpec, EigenSelect, PactError, ReduceError, ReduceOptions, ReduceStrategy, Reduction,
    ReductionSession,
};
use pact_lanczos::LanczosConfig;
use pact_netlist::{Branch, RcNetwork};
use pact_sparse::{CsrMat, FactorError};

fn backends() -> Vec<(&'static str, EigenSelect)> {
    vec![
        ("auto", EigenSelect::Auto),
        ("dense", EigenSelect::Dense),
        ("lanczos", EigenSelect::Lanczos(LanczosConfig::default())),
        ("lowrank", EigenSelect::LowRank),
    ]
}

fn strategies() -> Vec<(&'static str, ReduceStrategy)> {
    vec![
        ("flat", ReduceStrategy::Flat),
        (
            "hier",
            ReduceStrategy::Hierarchical {
                max_block: 4,
                max_depth: 16,
            },
        ),
    ]
}

/// Three ports, no internal nodes: resistor triangle with capacitors to
/// ground. There is nothing to eliminate, so `A′ = A` and `B′ = B`.
fn ports_only_network() -> RcNetwork {
    RcNetwork {
        node_names: vec!["p0".into(), "p1".into(), "p2".into()],
        num_ports: 3,
        resistors: vec![
            Branch {
                a: Some(0),
                b: None,
                value: 50.0,
            },
            Branch {
                a: Some(0),
                b: Some(1),
                value: 100.0,
            },
            Branch {
                a: Some(1),
                b: Some(2),
                value: 200.0,
            },
            Branch {
                a: Some(2),
                b: Some(0),
                value: 300.0,
            },
        ],
        capacitors: vec![
            Branch {
                a: Some(0),
                b: None,
                value: 1e-12,
            },
            Branch {
                a: Some(1),
                b: None,
                value: 2e-12,
            },
            Branch {
                a: Some(2),
                b: None,
                value: 3e-12,
            },
        ],
    }
}

/// Two ports bridged by one internal node: the smallest network with a
/// non-trivial (1×1) conductance block to eliminate.
fn single_internal_network() -> RcNetwork {
    RcNetwork {
        node_names: vec!["p0".into(), "p1".into(), "mid".into()],
        num_ports: 2,
        resistors: vec![
            Branch {
                a: Some(0),
                b: None,
                value: 75.0,
            },
            Branch {
                a: Some(0),
                b: Some(2),
                value: 120.0,
            },
            Branch {
                a: Some(2),
                b: Some(1),
                value: 240.0,
            },
        ],
        capacitors: vec![
            Branch {
                a: Some(0),
                b: None,
                value: 1e-12,
            },
            Branch {
                a: Some(2),
                b: None,
                value: 4e-12,
            },
            Branch {
                a: Some(1),
                b: None,
                value: 2e-12,
            },
        ],
    }
}

fn reduce_with(net: &RcNetwork, strategy: ReduceStrategy, backend: EigenSelect) -> Reduction {
    let mut opts = ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap());
    opts.strategy = strategy;
    opts.eigen_backend = backend;
    opts.threads = Some(1);
    ReductionSession::new(opts).reduce_network(net).unwrap()
}

fn check_moments_invariant(net: &RcNetwork, label: &str) {
    let mut reference: Option<Reduction> = None;
    for (sname, strategy) in strategies() {
        for (bname, backend) in backends() {
            let what = format!("{label}/{sname}/{bname}");
            let red = reduce_with(net, strategy, backend);
            assert_eq!(
                red.model.num_ports(),
                net.num_ports,
                "{what}: port count changed"
            );
            for &v in red.model.a1.as_slice() {
                assert!(v.is_finite(), "{what}: non-finite entry in A'");
            }
            match &reference {
                None => reference = Some(red),
                Some(base) => {
                    assert_eq!(base.model.a1, red.model.a1, "{what}: A' moments differ");
                    assert_eq!(base.model.b1, red.model.b1, "{what}: B' moments differ");
                    assert_eq!(
                        base.model.lambdas.len(),
                        red.model.lambdas.len(),
                        "{what}: retained pole count differs"
                    );
                }
            }
        }
    }
}

#[test]
fn ports_only_network_has_invariant_moments() {
    let net = ports_only_network();
    check_moments_invariant(&net, "ports-only");
    // Nothing to eliminate ⇒ no poles, and the moments are the stamps.
    let red = reduce_with(&net, ReduceStrategy::Flat, EigenSelect::Auto);
    assert_eq!(red.model.num_poles(), 0, "ports-only network grew poles");
    let stamped = net.stamp();
    let g = stamped.g.to_dense();
    let c = stamped.c.to_dense();
    assert_eq!(red.model.a1, g, "ports-only A' must equal the G stamp");
    assert_eq!(red.model.b1, c, "ports-only B' must equal the C stamp");
}

#[test]
fn single_internal_network_has_invariant_moments() {
    check_moments_invariant(&single_internal_network(), "single-internal");
}

#[test]
fn ports_only_and_single_internal_survive_matrix_free() {
    for (label, net) in [
        ("ports-only", ports_only_network()),
        ("single-internal", single_internal_network()),
    ] {
        let spec = CutoffSpec::new(1e9, 0.05).unwrap();
        let parts = pact::Partitions::split(&net.stamp());
        let ports: Vec<String> = net.node_names[..net.num_ports].to_vec();
        let solver = pact::PcgSolver::new(&parts.d).unwrap();
        let mf = pact::reduce_matrix_free(&parts, &ports, &spec, &solver).unwrap();
        let flat = reduce_with(&net, ReduceStrategy::Flat, EigenSelect::Auto);
        // The PCG solver replaces the direct factorization, so moments
        // agree to iteration tolerance rather than bitwise.
        for (label2, a, b) in [
            ("A'", &mf.model.a1, &flat.model.a1),
            ("B'", &mf.model.b1, &flat.model.b1),
        ] {
            let scale = b
                .as_slice()
                .iter()
                .fold(0.0f64, |acc, v| acc.max(v.abs()))
                .max(1e-300);
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!(
                    (x - y).abs() <= 1e-9 * scale,
                    "{label}: matrix-free {label2} moments differ ({x:.17e} vs {y:.17e})"
                );
            }
        }
    }
}

/// Replaces the diagonal entry of global row `row` of `m` with NaN.
fn poison_diagonal(m: &CsrMat, row: usize) -> CsrMat {
    let mut data = m.data().to_vec();
    let lo = m.indptr()[row];
    let hi = m.indptr()[row + 1];
    let at = (lo..hi)
        .find(|&p| m.indices()[p] == row)
        .expect("row has a diagonal entry");
    data[at] = f64::NAN;
    CsrMat::from_raw(
        m.nrows(),
        m.ncols(),
        m.indptr().to_vec(),
        m.indices().to_vec(),
        data,
    )
}

#[test]
fn poisoned_conductance_block_is_a_typed_non_finite_error() {
    // A NaN on an internal diagonal of `G` must surface as
    // `FactorError::NonFinitePivot` whether or not pivot relief is
    // armed — relief exists for small *finite* pivots and must never
    // mask a poisoned value.
    let net = single_internal_network();
    let mut stamped = net.stamp();
    stamped.g = poison_diagonal(&stamped.g, net.num_ports); // internal row
    let ports: Vec<String> = net.node_names[..net.num_ports].to_vec();
    for relief in [None, Some(1e-12)] {
        let mut opts = ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap());
        opts.pivot_relief = relief;
        let err = ReductionSession::new(opts)
            .reduce(&stamped, &ports)
            .unwrap_err();
        match &err {
            ReduceError::Factor(FactorError::NonFinitePivot { pivot, .. }) => {
                assert!(pivot.is_nan(), "reported pivot should be the NaN");
            }
            other => panic!("relief={relief:?}: expected NonFinitePivot, got {other:?}"),
        }
        // The CLI mapping attributes the failure to the owning node.
        let pe = PactError::from_reduce(err, &net);
        assert_eq!(pe.code(), "non_finite_internal_conductance");
        assert!(
            pe.to_string().contains("mid"),
            "error lacks node attribution: {pe}"
        );
    }
}
