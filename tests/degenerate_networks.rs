//! Property-style sweeps over degenerate RC networks.
//!
//! The reduction pipeline must never panic on pathological input: every
//! failure on the `rcfit` path is a typed [`PactError`] with node or
//! element attribution, and every success is a finite, well-formed
//! reduced model. Each seed drives the vendored [`XorShiftRng`] to build
//! a random network and then injects one or more degeneracies — floating
//! internal nodes, zero-value capacitors, astronomically resistive
//! near-singular `D` blocks, disconnected ports, non-finite values — and
//! runs the same sanitize → reduce pipeline the CLI runs, inside
//! `catch_unwind` so a panic anywhere is reported as a seed-numbered
//! test failure rather than a process abort.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pact::{
    reduce_network, sanitize_network, CutoffSpec, EigenSelect, PactError, ReduceOptions, Reduction,
};
use pact_lanczos::LanczosConfig;
use pact_netlist::{Branch, RcNetwork};
use pact_sparse::XorShiftRng;

/// Seeds per degeneracy class in the default (fast) run.
#[cfg(not(feature = "slow-tests"))]
const SEEDS: u64 = 12;
/// Seeds per degeneracy class under `--features slow-tests`.
#[cfg(feature = "slow-tests")]
const SEEDS: u64 = 120;

/// A connected random RC core: `ports` port nodes, `internals` internal
/// nodes, a spanning resistor tree plus random cross links, grounded at
/// node 0, a capacitor on every node.
fn random_core(rng: &mut XorShiftRng, ports: usize, internals: usize) -> RcNetwork {
    let n = ports + internals;
    let mut resistors = vec![Branch {
        a: Some(0),
        b: None,
        value: rng.gen_range_f64(10.0, 1_000.0),
    }];
    for k in 1..n {
        let prev = rng.gen_index(k);
        resistors.push(Branch {
            a: Some(k),
            b: Some(prev),
            value: rng.gen_range_f64(1.0, 5_000.0),
        });
    }
    for _ in 0..n / 2 {
        let a = rng.gen_index(n);
        let b = rng.gen_index(n);
        if a != b {
            resistors.push(Branch {
                a: Some(a),
                b: Some(b),
                value: rng.gen_range_f64(100.0, 50_000.0),
            });
        }
    }
    let capacitors = (0..n)
        .map(|k| Branch {
            a: Some(k),
            b: None,
            value: rng.gen_range_f64(1e-15, 5e-12),
        })
        .collect();
    let mut node_names: Vec<String> = (0..ports).map(|i| format!("p{i}")).collect();
    node_names.extend((0..internals).map(|i| format!("n{i}")));
    RcNetwork {
        node_names,
        num_ports: ports,
        resistors,
        capacitors,
    }
}

/// Appends `extra` new internal nodes with no resistive path anywhere:
/// only capacitive links into the existing network (or nothing at all).
fn add_floating_cluster(rng: &mut XorShiftRng, net: &mut RcNetwork, extra: usize) {
    let base = net.node_names.len();
    for j in 0..extra {
        net.node_names.push(format!("float{j}"));
        if rng.gen_index(3) > 0 {
            net.capacitors.push(Branch {
                a: Some(base + j),
                b: Some(rng.gen_index(base)),
                value: rng.gen_range_f64(1e-15, 1e-12),
            });
        }
    }
}

/// Zeroes a handful of capacitor values in place.
fn add_zero_caps(rng: &mut XorShiftRng, net: &mut RcNetwork) {
    let m = net.capacitors.len();
    for _ in 0..1 + rng.gen_index(3) {
        let i = rng.gen_index(m);
        net.capacitors[i].value = 0.0;
    }
}

/// Hangs a chain of astronomically large resistors off an internal node,
/// driving that block of `D` within rounding error of singular.
fn add_near_singular_chain(rng: &mut XorShiftRng, net: &mut RcNetwork, links: usize) {
    let base = net.node_names.len();
    let anchor = rng.gen_index(base);
    for j in 0..links {
        net.node_names.push(format!("stiff{j}"));
        let prev = if j == 0 { anchor } else { base + j - 1 };
        net.resistors.push(Branch {
            a: Some(base + j),
            b: Some(prev),
            value: rng.gen_range_f64(1e18, 1e22),
        });
        net.capacitors.push(Branch {
            a: Some(base + j),
            b: None,
            value: rng.gen_range_f64(1e-15, 1e-13),
        });
    }
}

/// Detaches one port from every resistor, leaving it connected (if at
/// all) only through capacitors.
fn disconnect_port(rng: &mut XorShiftRng, net: &mut RcNetwork) {
    let port = rng.gen_index(net.num_ports);
    net.resistors
        .retain(|r| r.a != Some(port) && r.b != Some(port));
}

/// Poisons one element value with a non-finite number.
fn add_non_finite(rng: &mut XorShiftRng, net: &mut RcNetwork) {
    let bad = if rng.gen_index(2) == 0 {
        f64::NAN
    } else {
        f64::INFINITY
    };
    if rng.gen_index(2) == 0 {
        let i = rng.gen_index(net.resistors.len());
        net.resistors[i].value = bad;
    } else {
        let i = rng.gen_index(net.capacitors.len());
        net.capacitors[i].value = bad;
    }
}

/// The CLI's reduction path: sanitize, then reduce with pivot relief.
/// Every failure must surface as a typed [`PactError`].
fn run_pipeline(net: &RcNetwork, strict_pivots: bool) -> Result<Reduction, PactError> {
    let sanitized = sanitize_network(net).map_err(PactError::from)?;
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(1e9, 0.1).map_err(PactError::from)?,
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: pact_sparse::Ordering::MinDegree,
        dense_threshold: 0,
        threads: None,
        pivot_relief: if strict_pivots { None } else { Some(1e-12) },
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    reduce_network(&sanitized.network, &opts)
        .map_err(|e| PactError::from_reduce(e, &sanitized.network))
}

/// A model that comes back `Ok` must be structurally sound: square port
/// blocks, matching pole/row counts, every entry finite.
fn assert_model_well_formed(red: &Reduction, what: &str) {
    let m = red.model.num_ports();
    assert_eq!(red.model.a1.nrows(), m, "{what}: A' not square");
    assert_eq!(red.model.a1.ncols(), m, "{what}: A' not square");
    assert_eq!(red.model.b1.nrows(), m, "{what}: B' shape");
    assert_eq!(
        red.model.r2.nrows(),
        red.model.lambdas.len(),
        "{what}: R'' rows vs poles"
    );
    for &v in red.model.a1.as_slice() {
        assert!(v.is_finite(), "{what}: non-finite entry in A'");
    }
    for &v in red.model.b1.as_slice() {
        assert!(v.is_finite(), "{what}: non-finite entry in B'");
    }
    for &v in red.model.r2.as_slice() {
        assert!(v.is_finite(), "{what}: non-finite entry in R''");
    }
    for &l in &red.model.lambdas {
        assert!(l.is_finite(), "{what}: non-finite pole");
    }
}

/// Runs one degeneracy class over `SEEDS` seeds. `mutate` injects the
/// degeneracy; `allowed_codes` lists the error codes a typed failure may
/// carry (anything else, or a panic, fails the test).
fn sweep(label: &str, mutate: impl Fn(&mut XorShiftRng, &mut RcNetwork), allowed_codes: &[&str]) {
    for seed in 0..SEEDS {
        let what = format!("{label}/seed{seed}");
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = XorShiftRng::seed_from_u64(0xdead_0000 + seed * 7919);
            let ports = 2 + rng.gen_index(4);
            let internals = 10 + rng.gen_index(30);
            let mut net = random_core(&mut rng, ports, internals);
            mutate(&mut rng, &mut net);
            run_pipeline(&net, false)
        }));
        match outcome {
            Err(_) => panic!("{what}: pipeline panicked on degenerate input"),
            Ok(Ok(red)) => assert_model_well_formed(&red, &what),
            Ok(Err(e)) => assert!(
                allowed_codes.contains(&e.code()),
                "{what}: unexpected error [{}]: {e}",
                e.code()
            ),
        }
    }
}

#[test]
fn baseline_random_networks_reduce_cleanly() {
    sweep("baseline", |_, _| {}, &[]);
}

#[test]
fn floating_internal_nodes_never_panic() {
    sweep(
        "floating",
        |rng, net| {
            let extra = 1 + rng.gen_index(5);
            add_floating_cluster(rng, net, extra);
        },
        &[],
    );
}

#[test]
fn zero_value_capacitors_never_panic() {
    sweep("zero-caps", add_zero_caps, &[]);
}

#[test]
fn near_singular_d_never_panics_with_pivot_relief() {
    sweep(
        "near-singular",
        |rng, net| {
            let links = 1 + rng.gen_index(4);
            add_near_singular_chain(rng, net, links);
        },
        // Pivot relief should normally absorb these, but a chain this
        // stiff may still legitimately fail factoring or stall the
        // Lanczos sweep; what it must never do is panic or come back
        // with an unattributed error.
        &["singular_internal_conductance", "lanczos"],
    );
}

#[test]
fn disconnected_ports_never_panic() {
    sweep("disconnected-port", disconnect_port, &[]);
}

#[test]
fn non_finite_values_are_typed_network_errors() {
    sweep("non-finite", add_non_finite, &["network"]);
}

#[test]
fn everything_at_once_never_panics() {
    sweep(
        "combined",
        |rng, net| {
            let extra = 1 + rng.gen_index(3);
            add_floating_cluster(rng, net, extra);
            add_zero_caps(rng, net);
            let links = 1 + rng.gen_index(3);
            add_near_singular_chain(rng, net, links);
            disconnect_port(rng, net);
        },
        &["singular_internal_conductance", "lanczos"],
    );
}

#[test]
fn strict_pivots_fail_with_node_attribution() {
    // Under --strict-pivots the near-singular chain must either factor
    // or name a specific internal node in the error, never panic.
    for seed in 0..SEEDS {
        let what = format!("strict/seed{seed}");
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = XorShiftRng::seed_from_u64(0xbeef_0000 + seed * 104_729);
            let mut net = random_core(&mut rng, 3, 20);
            let links = 2 + rng.gen_index(3);
            add_near_singular_chain(&mut rng, &mut net, links);
            run_pipeline(&net, true)
        }));
        match outcome {
            Err(_) => panic!("{what}: pipeline panicked"),
            Ok(Ok(red)) => assert_model_well_formed(&red, &what),
            Ok(Err(e)) => match e.code() {
                "singular_internal_conductance" => {
                    let msg = e.to_string();
                    assert!(
                        msg.contains("stiff") || msg.contains('n') || msg.contains('p'),
                        "{what}: error lacks node attribution: {msg}"
                    );
                }
                "lanczos" => {}
                other => panic!("{what}: unexpected error [{other}]: {e}"),
            },
        }
    }
}
