//! Concurrency soak: the daemon is a scheduling layer, never a numerics
//! layer.
//!
//! Several client threads hammer one daemon with a mix of mesh,
//! power-grid, inverter-line, hierarchically-reduced mesh and
//! extracted/chain-collapsed embedded-parasitics decks.
//! Every response must be *bit-identical* to a one-shot run of the
//! shared pipeline (what
//! `rcfit` would print), regardless of worker count, queue interleaving
//! or warm-session state; and the per-request telemetry counters must be
//! independent of worker assignment except for the two warmth counters
//! (`factorizations`/`refactorizations`), which are exactly the ones
//! warm reuse is allowed to move.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pact::json::Value;
use pact::ReductionSession;
use pact_gen::{
    inverter_pair_deck, network_to_elements, power_grid_deck, substrate_mesh, LineSpec, MeshSpec,
    PowerGridSpec,
};
use pact_netlist::Netlist;
use pact_serve::{
    prepare_deck, reduce_prepared, render_reduced, Daemon, DeckOptions, ReplySink, ServeConfig,
};

/// One deck family of the mixed workload.
struct Family {
    name: &'static str,
    deck: String,
    /// Extra ports forced via the request's `ports` option.
    ports: Vec<String>,
    /// `Some(max_block)` routes the request through the hierarchical
    /// strategy (the daemon's `"hier"`/`"block_size"` options).
    hier_block: Option<usize>,
    /// Reduce per ported RC subnetwork (the daemon's `"extract"`
    /// option).
    extract: bool,
    /// `Some(tol)` runs the chain-collapse pre-pass (the daemon's
    /// `"collapse_chains"`/`"chain_tol"` options).
    chain_tol: Option<f64>,
    /// Expected reduced deck bytes (one-shot shared pipeline).
    expected_deck: String,
    /// Expected telemetry counters with the warmth counters removed.
    expected_counters: Vec<(String, Value)>,
}

fn small_mesh_deck() -> (String, Vec<String>) {
    let spec = MeshSpec {
        nx: 8,
        ny: 8,
        nz: 3,
        num_contacts: 6,
        num_wells: 3,
        ..MeshSpec::table2()
    };
    let net = substrate_mesh(&spec);
    let deck = Netlist {
        title: "* soak substrate mesh".to_owned(),
        elements: network_to_elements(&net, "m"),
        ..Netlist::default()
    };
    // A pure-RC deck has no port-forcing devices; expose a few contacts
    // through the request's `ports` option.
    let ports = (0..spec.num_contacts).map(|k| format!("port{k}")).collect();
    (deck.to_string(), ports)
}

fn small_grid_deck() -> (String, Vec<String>) {
    let spec = PowerGridSpec {
        nx: 8,
        ny: 8,
        num_taps: 4,
        ..PowerGridSpec::default()
    };
    (power_grid_deck(&spec).netlist.to_string(), Vec::new())
}

/// A mesh reduced hierarchically: exercises the two-level Schur leaf
/// fan-out and the per-worker session pool's leaf-pattern reuse. Uses
/// its own topology so the one-cold-analysis-per-family accounting
/// below stays exact.
fn hier_mesh_deck() -> (String, Vec<String>) {
    let spec = MeshSpec {
        nx: 10,
        ny: 10,
        nz: 4,
        num_contacts: 8,
        ..MeshSpec::table2()
    };
    let net = substrate_mesh(&spec);
    let deck = Netlist {
        title: "* soak hier substrate mesh".to_owned(),
        elements: network_to_elements(&net, "h"),
        ..Netlist::default()
    };
    let ports = (0..spec.num_contacts).map(|k| format!("port{k}")).collect();
    (deck.to_string(), ports)
}

fn line_deck() -> (String, Vec<String>) {
    let spec = LineSpec {
        segments: 40,
        ..LineSpec::default()
    };
    (inverter_pair_deck(&spec).to_string(), Vec::new())
}

/// Two embedded RC islands — a 60-segment chain and a tiny T — between
/// non-RC anchors: exercises the `extract` split plus the chain-collapse
/// pre-pass (small per-segment τ so the default 1 GHz band re-segments
/// at the 1e-3 budget). Its own topology, like every family.
fn chain_deck() -> (String, Vec<String>) {
    let mut s = String::from("* soak chain deck\nVdrv in 0 1\n");
    let mut prev = "in".to_owned();
    for i in 0..60 {
        let next = if i == 59 {
            "out".to_owned()
        } else {
            format!("n{}", i + 1)
        };
        s.push_str(&format!("R{i} {prev} {next} 1\nC{i} {next} 0 2.5f\n"));
        prev = next;
    }
    s.push_str("Iload out 0 1m\nV2 p 0 1\nRa p q 50\nCa q 0 2f\nRb q r 50\nIload2 r 0 1m\n.end\n");
    (s, Vec::new())
}

/// Telemetry counters as key/value pairs, minus the two counters warm
/// reuse legitimately moves.
fn counters_without_warmth(tel: &Value) -> Vec<(String, Value)> {
    match tel.get("counters") {
        Some(Value::Obj(fields)) => fields
            .iter()
            .filter(|(k, _)| k != "factorizations" && k != "refactorizations")
            .cloned()
            .collect(),
        other => panic!("telemetry has no counters object: {other:?}"),
    }
}

/// The one-shot reference: the shared pipeline with a fresh session,
/// exactly what `rcfit` runs for this deck.
fn one_shot(
    deck: &str,
    ports: &[String],
    hier_block: Option<usize>,
    extract: bool,
    chain_tol: Option<f64>,
) -> (String, Vec<(String, Value)>) {
    let opts = DeckOptions {
        threads: Some(1), // the daemon's per-request default
        extra_ports: ports.to_vec(),
        hier: hier_block.is_some(),
        block_size: hier_block.unwrap_or(DeckOptions::default().block_size),
        extract,
        collapse_chains: chain_tol.is_some(),
        chain_tol: chain_tol.unwrap_or(DeckOptions::default().chain_tol),
        ..DeckOptions::default()
    };
    let prep = prepare_deck(deck, &opts).expect("deck prepares");
    let mut session = ReductionSession::new(opts.reduce_options().unwrap());
    let red = reduce_prepared(&prep, &mut session, &opts).expect("deck reduces");
    let mut tel = prep.telemetry.clone();
    tel.absorb(&red.telemetry());
    let (text, _) = render_reduced(&prep, &red, "rcfit", opts.sparsify, &mut tel);
    (text, counters_without_warmth(&tel.to_json()))
}

fn families() -> Vec<Family> {
    [
        ("mesh", small_mesh_deck(), None, false, None),
        ("grid", small_grid_deck(), None, false, None),
        ("line", line_deck(), None, false, None),
        ("hier", hier_mesh_deck(), Some(48), false, None),
        ("xtchain", chain_deck(), None, true, Some(1e-3)),
    ]
    .into_iter()
    .map(|(name, (deck, ports), hier_block, extract, chain_tol)| {
        let (expected_deck, expected_counters) =
            one_shot(&deck, &ports, hier_block, extract, chain_tol);
        Family {
            name,
            deck,
            ports,
            hier_block,
            extract,
            chain_tol,
            expected_deck,
            expected_counters,
        }
    })
    .collect()
}

fn request_line(id: &str, fam: &Family) -> String {
    let mut options = vec![("threads".to_owned(), Value::num(1.0))];
    if let Some(block) = fam.hier_block {
        options.push(("hier".to_owned(), Value::Bool(true)));
        options.push(("block_size".to_owned(), Value::num(block as f64)));
    }
    if fam.extract {
        options.push(("extract".to_owned(), Value::Bool(true)));
    }
    if let Some(tol) = fam.chain_tol {
        options.push(("collapse_chains".to_owned(), Value::Bool(true)));
        options.push(("chain_tol".to_owned(), Value::num(tol)));
    }
    if !fam.ports.is_empty() {
        options.push((
            "ports".to_owned(),
            Value::Arr(fam.ports.iter().map(Value::str).collect()),
        ));
    }
    Value::obj(vec![
        ("id".to_owned(), Value::str(id)),
        ("deck".to_owned(), Value::str(&fam.deck)),
        ("options".to_owned(), Value::obj(options)),
    ])
    .render()
}

/// Runs the mixed workload through a daemon with `workers` shards and
/// returns every response document keyed by request id.
fn run_soak(
    families: &[Family],
    workers: usize,
    clients: usize,
    per_client: usize,
) -> (BTreeMap<String, Value>, Arc<pact_serve::ServeCounters>) {
    let daemon = Daemon::new(ServeConfig {
        workers,
        queue_cap: 256,
        sessions_per_worker: 4,
        patterns_per_session: 16,
        max_deck_bytes: 16 << 20,
    });
    let responses: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for c in 0..clients {
            let daemon = &daemon;
            let responses = Arc::clone(&responses);
            scope.spawn(move || {
                let sink_lines = Arc::clone(&responses);
                let sink: ReplySink =
                    Arc::new(move |l: &str| sink_lines.lock().unwrap().push(l.to_owned()));
                for r in 0..per_client {
                    let fam = &families[(c + r) % families.len()];
                    let id = format!("c{c}-r{r}-{}", fam.name);
                    daemon.submit(&request_line(&id, fam), &sink);
                }
            });
        }
    });
    let counters = daemon.shutdown();
    let docs = responses
        .lock()
        .unwrap()
        .iter()
        .map(|l| {
            let doc = Value::parse(l).expect("response parses");
            let id = doc.get("id").unwrap().as_str().unwrap().to_owned();
            (id, doc)
        })
        .collect();
    (docs, counters)
}

#[test]
fn concurrent_mixed_decks_are_bit_identical_to_one_shot() {
    let families = families();
    let (clients, per_client) = (3, 10);
    let total = clients * per_client;

    // The embedded-parasitics family must exercise its options for real:
    // both islands extracted, both chains collapsed.
    let xt = families.iter().find(|f| f.name == "xtchain").unwrap();
    let xt_count = |key: &str| {
        xt.expected_counters
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_f64())
            .unwrap()
    };
    assert_eq!(xt_count("extract_subnets"), 2.0);
    assert_eq!(xt_count("chains_collapsed"), 2.0);
    assert!(
        xt_count("nodes_eliminated") >= 50.0,
        "the 60-seg chain re-segments"
    );

    for workers in [1, 3] {
        let (docs, counters) = run_soak(&families, workers, clients, per_client);
        assert_eq!(docs.len(), total, "every request answered exactly once");
        for (id, doc) in &docs {
            let fam = families
                .iter()
                .find(|f| id.ends_with(f.name))
                .expect("id names its family");
            assert_eq!(
                doc.get("ok"),
                Some(&Value::Bool(true)),
                "{id} failed: {doc:?}"
            );
            // The numerics contract: byte-identical to one-shot rcfit.
            assert_eq!(
                doc.get("deck").unwrap().as_str().unwrap(),
                fam.expected_deck,
                "{id} (workers={workers}) drifted from the one-shot reduction"
            );
            // The telemetry contract: counters equal up to warmth.
            assert_eq!(
                counters_without_warmth(doc.get("telemetry").unwrap()),
                fam.expected_counters,
                "{id} (workers={workers}) counters depend on worker assignment"
            );
        }
        // Warmth accounting: same-topology decks share a shard, so each
        // family pays exactly one cold symbolic analysis per daemon.
        let hits = counters
            .session_hits
            .load(std::sync::atomic::Ordering::Relaxed);
        let misses = counters
            .session_misses
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(hits + misses, total as u64);
        assert_eq!(
            misses,
            families.len() as u64,
            "one miss per topology family (workers={workers})"
        );
        assert_eq!(
            counters.ok.load(std::sync::atomic::Ordering::Relaxed),
            total as u64
        );
        assert_eq!(counters.shed.load(std::sync::atomic::Ordering::Relaxed), 0);
    }
}
